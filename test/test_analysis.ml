(* Tests for lib/analysis: abstract domains, fixpoint inference,
   cardinality estimates, semantic lint, and join ordering. *)

module D = Analysis.Domain
module I = Analysis.Infer

let check = Alcotest.check
let parse = Asp.Parser.parse_program

let analyze src = I.analyze (parse src)

let find_pred t name arity =
  match I.find_pred t (name, arity) with
  | Some p -> p
  | None -> Alcotest.fail (Printf.sprintf "no pred_info for %s/%d" name arity)

let rule_at t i = List.nth (I.rules t) i

(* ------------------------------------------------------------------ *)
(* Domain unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let ints lo hi = D.interval (D.Fin lo) (D.Fin hi)

let consts l =
  D.Consts
    (List.fold_left
       (fun s t -> D.TermSet.add t s)
       D.TermSet.empty
       (List.map Asp.Parser.parse_term l))

let test_domain_lattice () =
  check Alcotest.bool "bot empty" true (D.is_empty D.bot);
  check Alcotest.bool "join consts" true
    (D.equal (D.join (consts [ "a" ]) (consts [ "b" ])) (consts [ "a"; "b" ]));
  check Alcotest.bool "join int consts with interval" true
    (D.equal (D.join (consts [ "3" ]) (ints 5 9)) (ints 3 9));
  check Alcotest.bool "join symbolic with interval is top" true
    (D.equal (D.join (consts [ "a" ]) (ints 0 1)) D.top);
  check Alcotest.bool "meet disjoint consts" true
    (D.is_empty (D.meet (consts [ "a" ]) (consts [ "b" ])));
  check Alcotest.bool "meet interval/consts filters" true
    (D.equal (D.meet (consts [ "1"; "7"; "b" ]) (ints 0 3)) (consts [ "1" ]));
  check Alcotest.bool "empty interval is bot" true
    (D.is_empty (D.interval (D.Fin 3) (D.Fin 1)));
  check (Alcotest.option Alcotest.int) "card of interval" (Some 5)
    (D.card (ints 2 6));
  check Alcotest.bool "widen jumps growing bound" true
    (D.equal (D.widen (ints 0 3) (ints 0 4)) (D.interval (D.Fin 0) D.PosInf));
  check Alcotest.bool "widen keeps stable bound" true
    (D.equal (D.widen (ints 0 3) (ints 1 3)) (ints 0 3))

let test_domain_arith () =
  check Alcotest.bool "pointwise add" true
    (D.equal (D.arith "+" [ consts [ "1"; "2" ]; consts [ "10" ] ])
       (consts [ "11"; "12" ]));
  check Alcotest.bool "interval add" true
    (D.equal (D.arith "+" [ ints 0 3; D.interval (D.Fin 1) D.PosInf ])
       (D.interval (D.Fin 1) D.PosInf));
  check Alcotest.bool "mul signs" true
    (D.equal (D.arith "*" [ ints (-2) 3; ints 4 5 ]) (ints (-10) 15));
  check Alcotest.bool "abs" true (D.equal (D.arith "abs" [ ints (-7) 3 ]) (ints 0 7));
  check Alcotest.bool "div bounded by dividend" true
    (D.equal (D.arith "/" [ ints (-9) 4; ints 1 3 ]) (ints (-9) 9));
  check Alcotest.bool "symbolic operand gives top" true
    (D.equal (D.arith "+" [ consts [ "a" ]; ints 0 1 ]) D.top)

let test_domain_cmp_restrict () =
  check (Alcotest.option Alcotest.bool) "lt decided" (Some true)
    (D.cmp Asp.Lit.Lt (ints 0 3) (ints 4 9));
  check (Alcotest.option Alcotest.bool) "lt refuted" (Some false)
    (D.cmp Asp.Lit.Lt (ints 5 9) (ints 0 5));
  check (Alcotest.option Alcotest.bool) "lt open" None
    (D.cmp Asp.Lit.Lt (ints 0 5) (ints 3 9));
  check (Alcotest.option Alcotest.bool) "eq disjoint" (Some false)
    (D.cmp Asp.Lit.Eq (consts [ "a" ]) (consts [ "b" ]));
  check Alcotest.bool "restrict lt" true
    (D.equal (D.restrict Asp.Lit.Lt (ints 0 9) (ints 2 5)) (ints 0 4));
  check Alcotest.bool "restrict ge" true
    (D.equal (D.restrict Asp.Lit.Ge (ints 0 9) (ints 7 12)) (ints 7 9));
  check Alcotest.bool "restrict ne singleton" true
    (D.equal
       (D.restrict Asp.Lit.Ne (consts [ "a"; "b" ]) (consts [ "a" ]))
       (consts [ "b" ]))

(* ------------------------------------------------------------------ *)
(* Inference: domains and deadness                                     *)
(* ------------------------------------------------------------------ *)

let test_infer_domains () =
  let t = analyze "p(1..4). p(9). q(X) :- p(X), X < 3." in
  let p = find_pred t "p" 1 in
  check Alcotest.int "p fact count" 5 p.I.fact_count;
  check Alcotest.bool "p exact" true p.I.exact;
  let q = find_pred t "q" 1 in
  check Alcotest.bool "q dom within [1..2]" true
    (D.equal q.I.doms.(0) (consts [ "1"; "2" ]));
  check Alcotest.bool "q card about 2" true (q.I.card >= 1. && q.I.card <= 4.)

let test_infer_dead_rules () =
  let t = analyze "p(1). q(X) :- p(X), X > 5." in
  (match (rule_at t 1).I.dead with
  | Some (I.False_cmp _) -> ()
  | _ -> Alcotest.fail "expected False_cmp dead cause");
  let t = analyze "a(1). b(2). c :- a(X), b(X)." in
  (match (rule_at t 2).I.dead with
  | Some (I.Disjoint_var "X") -> ()
  | _ -> Alcotest.fail "expected Disjoint_var");
  let t = analyze "d :- e." in
  (match (rule_at t 0).I.dead with
  | Some (I.Undefined_pred ("e", 0)) -> ()
  | _ -> Alcotest.fail "expected Undefined_pred");
  (* e defined, but only by a dead rule: consumers are underivable *)
  let t = analyze "p(1). e :- p(2). d :- e." in
  (match (rule_at t 1).I.dead with
  | Some (I.Empty_arg _) -> ()
  | _ -> Alcotest.fail "expected Empty_arg for p(2)");
  (match (rule_at t 2).I.dead with
  | Some (I.Underivable_pred ("e", 0)) -> ()
  | _ -> Alcotest.fail "expected Underivable_pred");
  (* sanity: live rules are not flagged *)
  let t = analyze "p(1..3). q(X) :- p(X), X > 1." in
  check Alcotest.bool "live rule" true ((rule_at t 1).I.dead = None)

let test_infer_false_aggregate () =
  (* p(1..3) expands to three facts; the aggregate rule is index 3 *)
  let t = analyze "p(1..3). q :- #count { X : p(X) } > 5." in
  (match (rule_at t 3).I.dead with
  | Some (I.False_agg _) -> ()
  | _ -> Alcotest.fail "expected False_agg (count can never exceed 3)");
  let t = analyze "p(1..3). q :- #count { X : p(X) } >= 2." in
  check Alcotest.bool "satisfiable aggregate" true ((rule_at t 3).I.dead = None)

(* ------------------------------------------------------------------ *)
(* Cardinality estimates                                               *)
(* ------------------------------------------------------------------ *)

let within_10x est actual =
  let actual = float_of_int (max actual 1) in
  est >= actual /. 10. && est <= actual *. 10.

let pigeon_src n =
  Printf.sprintf
    "pigeon(1..%d). hole(1..%d).\n\
     { at(P,H) : hole(H) } :- pigeon(P).\n\
     placed(P) :- at(P,H).\n\
     :- pigeon(P), not placed(P).\n\
     :- at(P,H), at(Q,H), P < Q.\n"
    (n + 1) n

let test_estimates_pigeon () =
  let t = analyze (pigeon_src 10) in
  let at = find_pred t "at" 2 in
  check Alcotest.bool "at card ~110" true (within_10x at.I.card 110);
  let placed = find_pred t "placed" 1 in
  check Alcotest.bool "placed card ~11" true (within_10x placed.I.card 11);
  (* the mutual-exclusion constraint dominates grounding cost *)
  let cons = rule_at t 24 in
  check Alcotest.bool "constraint cost ~605" true
    (within_10x cons.I.cost 605)

let chain_src n =
  let b = Buffer.create 256 in
  for i = 1 to n - 1 do
    Buffer.add_string b (Printf.sprintf "edge(%d,%d). " i (i + 1))
  done;
  Buffer.add_string b "path(X,Y) :- edge(X,Y). path(X,Z) :- edge(X,Y), path(Y,Z).";
  Buffer.contents b

let test_estimates_chain () =
  let n = 30 in
  let t = analyze (chain_src n) in
  let actual = n * (n - 1) / 2 in
  let path = find_pred t "path" 2 in
  if not (within_10x path.I.card actual) then
    Alcotest.fail
      (Printf.sprintf "path card %.1f vs actual %d" path.I.card actual);
  let edge = find_pred t "edge" 2 in
  check Alcotest.bool "edge exact" true edge.I.exact;
  if edge.I.card <> float_of_int (n - 1) then
    Alcotest.fail (Printf.sprintf "edge card %.3f expected %d" edge.I.card (n - 1))

let test_estimates_vs_ground () =
  (* predicted per-predicate cardinalities within 10x of the actual ground
     atom population on a small mixed program *)
  let src =
    "n(1..12). e(X,Y) :- n(X), n(Y), Y = X + 1.\n\
     r(X,Y) :- e(X,Y). r(X,Z) :- e(X,Y), r(Y,Z).\n\
     big(X) :- n(X), X > 6."
  in
  let t = analyze src in
  let g = Asp.Grounder.ground (parse src) in
  let tbl = Hashtbl.create 16 in
  Asp.Model.AtomSet.iter
    (fun a ->
      let s = Asp.Atom.signature a in
      Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    g.Asp.Ground.universe;
  Hashtbl.iter
    (fun (p, n) actual ->
      let info = find_pred t p n in
      if not (within_10x info.I.card actual) then
        Alcotest.fail
          (Printf.sprintf "%s/%d: estimated %.1f actual %d" p n info.I.card
             actual))
    tbl

(* ------------------------------------------------------------------ *)
(* Semantic lint                                                       *)
(* ------------------------------------------------------------------ *)

module SL = Analysis.Semlint

let semlint ?config src = SL.run ?config (parse src)

let codes_of diags = List.map (fun d -> d.Diagnostic.code) diags

let has_code c diags = List.mem c (codes_of diags)

let test_semlint_dead_family () =
  let d = semlint "p(1..3). q :- p(7)." in
  check Alcotest.bool "L200 empty arg" true (has_code "L200" d);
  let d = semlint "p(1..3). q(X) :- p(X), X > 9." in
  check Alcotest.bool "L201 false cmp" true (has_code "L201" d);
  let d = semlint "a(1). b(2). c :- a(X), b(X)." in
  check Alcotest.bool "L207 disjoint join" true (has_code "L207" d);
  let d = semlint "p(1..3). q :- #count { X : p(X) } > 9." in
  check Alcotest.bool "L208 false aggregate" true (has_code "L208" d)

let test_semlint_redundancy () =
  let d = semlint "p(1..3). q(X) :- p(X), X < 9." in
  check Alcotest.bool "L202 true cmp" true (has_code "L202" d);
  let d = semlint "p(1..3). r(X) :- p(X), not s(X). s(1). r(Y) :- p(Y), not s(Y)." in
  check Alcotest.bool "L203 duplicate" true (has_code "L203" d);
  let d = semlint "p(1..3). r(1..2). q(X) :- p(X). q(X) :- p(X), r(X)." in
  check Alcotest.bool "L204 subsumed" true (has_code "L204" d);
  let d = semlint "p. q :- p, p." in
  check Alcotest.bool "L211 repeated literal" true (has_code "L211" d)

let test_semlint_type_and_choice () =
  let d = semlint "p(a). s(X + 1) :- p(X)." in
  check Alcotest.bool "L206 symbolic arithmetic" true (has_code "L206" d);
  let d = semlint "p(1). { q(X) : r(X) } :- p(X)." in
  check Alcotest.bool "L209 no satisfiable element" true (has_code "L209" d);
  let d = semlint "p(1..3). q(X) :- p(X). #show p/1." in
  check Alcotest.bool "L205 unconsumed derived pred" true (has_code "L205" d);
  let d = semlint "p(1..3). q(X) :- p(X). #show q/1." in
  check Alcotest.bool "consumed pred is fine" false (has_code "L205" d)

let test_semlint_blowup () =
  let d = semlint (pigeon_src 10) in
  check Alcotest.bool "L212 fires on pigeon-10" true (has_code "L212" d);
  let d = semlint (pigeon_src 6) in
  check Alcotest.bool "quiet on pigeon-6" false (has_code "L212" d);
  let config = { SL.blowup_threshold = 10.0 } in
  let d = semlint ~config (pigeon_src 6) in
  check Alcotest.bool "configurable threshold" true (has_code "L212" d)

(* codes that assert a defect (the zero-false-positive set) *)
let defect_codes =
  [ "L200"; "L201"; "L203"; "L204"; "L206"; "L207"; "L208"; "L209" ]

let assert_no_defects name diags =
  let bad = List.filter (fun d -> List.mem d.Diagnostic.code defect_codes) diags in
  if bad <> [] then
    Alcotest.fail
      (Printf.sprintf "%s: unexpected defect diagnostics:\n%s" name
         (String.concat "\n" (List.map Diagnostic.to_string bad)))

let test_semlint_clean_water_tank () =
  let scenario = snd (List.hd Cpsrisk.Water_tank.paper_scenarios) in
  let prog = Cpsrisk.Water_tank.asp_program ~scenario () in
  assert_no_defects "water tank" (SL.run prog)

(* ------------------------------------------------------------------ *)
(* Seeded fuzz: clean programs stay clean; injected defects are found  *)
(* ------------------------------------------------------------------ *)

(* Clean-by-construction generator: integer predicates whose domains all
   contain a shared window, guards drawn inside the producer's domain,
   joins over the shared window — so every generated rule is satisfiable
   and no two are alpha-equivalent. *)
let gen_clean_program st =
  let b = Buffer.create 512 in
  let npreds = 3 + Random.State.int st 3 in
  let doms =
    Array.init npreds (fun _ ->
        let lo = 1 + Random.State.int st 6 in
        let hi = 13 + Random.State.int st 6 in
        (lo, hi))
  in
  Array.iteri
    (fun i (lo, hi) -> Buffer.add_string b (Printf.sprintf "p%d(%d..%d). " i lo hi))
    doms;
  (* symbolic catalog preds *)
  let nsym = 1 + Random.State.int st 2 in
  for i = 0 to nsym - 1 do
    let k = 1 + Random.State.int st 3 in
    for j = 0 to k - 1 do
      Buffer.add_string b
        (Printf.sprintf "cat%d(c%d). " i (j + Random.State.int st 2))
    done
  done;
  (* guarded projections: bound inside the producer domain *)
  let nguard = 2 + Random.State.int st 3 in
  for j = 0 to nguard - 1 do
    let k = Random.State.int st npreds in
    let lo, hi = doms.(k) in
    let bound = lo + Random.State.int st (hi - lo) in
    Buffer.add_string b
      (Printf.sprintf "g%d(X) :- p%d(X), X >= %d.\n" j k bound)
  done;
  (* joins over the shared window [13..13] at least *)
  let njoin = 1 + Random.State.int st 2 in
  for j = 0 to njoin - 1 do
    let a = Random.State.int st npreds and c = Random.State.int st npreds in
    Buffer.add_string b
      (Printf.sprintf "j%d(X,Y) :- p%d(X), p%d(Y), X < Y.\n" j a c)
  done;
  (* integer arithmetic stays on integer producers *)
  let k = Random.State.int st npreds in
  Buffer.add_string b (Printf.sprintf "shift(X + 1) :- p%d(X).\n" k);
  (* negation against a guarded pred *)
  let k = Random.State.int st npreds in
  Buffer.add_string b (Printf.sprintf "lone%d(X) :- p%d(X), not g0(X).\n" 0 k);
  Buffer.contents b

let inject_defects st base doms_hint =
  ignore doms_hint;
  let dead_cmp = "deadc(X) :- p0(X), X > 99.\n" in
  let dead_arg = "deada :- p0(100).\n" in
  let disjoint = "dja(101..103). djb(105..108). deadj :- dja(X), djb(X).\n" in
  let clash = "symsrc(sy1). symsrc(sy2). clashp(X + 1) :- symsrc(X).\n" in
  (* duplicate an existing guarded rule, variables renamed *)
  let dup =
    match
      String.split_on_char '\n' base
      |> List.filter (fun l -> String.length l > 2 && l.[0] = 'g')
    with
    | l :: _ ->
        (* the only variable in a guard rule is X *)
        String.concat "Z" (String.split_on_char 'X' l) ^ "\n"
    | [] -> ""
  in
  ignore st;
  base ^ dead_cmp ^ dead_arg ^ disjoint ^ clash ^ dup

let test_semlint_fuzz () =
  for seed = 0 to 119 do
    let st = Random.State.make [| 0x5EED; seed |] in
    let base = gen_clean_program st in
    (match SL.run (parse base) with
    | d -> assert_no_defects (Printf.sprintf "seed %d" seed) d
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "seed %d: analysis raised %s on:\n%s" seed
             (Printexc.to_string e) base));
    let injected = inject_defects st base () in
    let d = SL.run (parse injected) in
    List.iter
      (fun code ->
        if not (has_code code d) then
          Alcotest.fail
            (Printf.sprintf "seed %d: expected %s after injection in:\n%s" seed
               code injected))
      [ "L201"; "L200"; "L207"; "L206"; "L203" ]
  done

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "analysis.domain",
      [
        Alcotest.test_case "lattice ops" `Quick test_domain_lattice;
        Alcotest.test_case "arithmetic" `Quick test_domain_arith;
        Alcotest.test_case "cmp and restrict" `Quick test_domain_cmp_restrict;
      ] );
    ( "analysis.infer",
      [
        Alcotest.test_case "argument domains" `Quick test_infer_domains;
        Alcotest.test_case "dead rules" `Quick test_infer_dead_rules;
        Alcotest.test_case "false aggregate" `Quick test_infer_false_aggregate;
        Alcotest.test_case "pigeon estimates" `Quick test_estimates_pigeon;
        Alcotest.test_case "chain estimates" `Quick test_estimates_chain;
        Alcotest.test_case "estimates vs ground" `Quick test_estimates_vs_ground;
      ] );
    ( "analysis.semlint",
      [
        Alcotest.test_case "dead family" `Quick test_semlint_dead_family;
        Alcotest.test_case "redundancy" `Quick test_semlint_redundancy;
        Alcotest.test_case "types and choices" `Quick test_semlint_type_and_choice;
        Alcotest.test_case "grounding blowup" `Quick test_semlint_blowup;
        Alcotest.test_case "water tank clean" `Quick test_semlint_clean_water_tank;
        Alcotest.test_case "120 seeded programs with injected defects" `Slow
          test_semlint_fuzz;
      ] );
  ]
