(* Differential tests: the production CDNL solver (Asp.Solver) against
   both retained oracles — the pruned DFS (Asp.Dfs, the previous
   production path) and the exhaustive reference (Asp.Naive) — on seeded
   random ground programs. Where the oracles accept a program all three
   must agree bit-for-bit on the model sets, the per-model
   weak-constraint costs and the optimal fronts; where the oracles
   reject (guess caps, aggregates under their stratification
   requirement) the CDNL solver must still answer, and every model it
   reports is verified independently through the Gelfond–Lifschitz
   check. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Seeded random program generator                                      *)
(* ------------------------------------------------------------------ *)

(* Propositional programs over a small vocabulary, exercising facts,
   rules with default negation (stratified and not), choice rules with
   conditions and cardinality bounds, integrity constraints, weak
   constraints (including negative weights, which force the mixed-sign
   lower bound in branch-and-bound), and #count/#sum aggregates. *)
let gen_program rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let n_atoms = 4 + int 4 in
  let atom i = Printf.sprintf "a%d" i in
  let rand_atom () = atom (int n_atoms) in
  let lit () = (if int 3 = 0 then "not " else "") ^ rand_atom () in
  let lits n = List.init n (fun _ -> lit ()) in
  let buf = Buffer.create 256 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* facts *)
  for _ = 1 to 1 + int 2 do
    stmt "%s." (rand_atom ())
  done;
  (* rules *)
  for _ = 1 to 2 + int 4 do
    stmt "%s :- %s." (rand_atom ()) (String.concat ", " (lits (1 + int 3)))
  done;
  (* choice rules *)
  for _ = 1 to 1 + int 2 do
    let elems =
      List.init (1 + int 3) (fun _ ->
          if bool () then rand_atom ()
          else Printf.sprintf "%s : %s" (rand_atom ()) (rand_atom ()))
    in
    let body =
      match int 3 with
      | 0 -> ""
      | n -> " :- " ^ String.concat ", " (lits n)
    in
    let lower = if int 3 = 0 then string_of_int (int 2) ^ " " else "" in
    let upper = if int 3 = 0 then " " ^ string_of_int (1 + int 2) else "" in
    stmt "%s{ %s }%s%s." lower (String.concat " ; " elems) upper body
  done;
  (* integrity constraints *)
  for _ = 1 to int 3 do
    stmt ":- %s." (String.concat ", " (lits (1 + int 2)))
  done;
  (* aggregates, occasionally (surface syntax is single-element; ground
     multi-element aggregates come from variables, covered by the corner
     programs below) *)
  if int 3 = 0 then begin
    let op = if bool () then ">" else "<=" in
    let agg = if bool () then "#count" else "#sum" in
    let body =
      Printf.sprintf "%s { %d : %s } %s %d" agg (1 + int 3)
        (String.concat ", " (lits (1 + int 2)))
        op (int 3)
    in
    if bool () then stmt ":- %s." body else stmt "%s :- %s." (rand_atom ()) body
  end;
  (* weak constraints *)
  for _ = 1 to int 3 do
    let weight = int 6 - 2 in
    let terms = if bool () then ", t" ^ string_of_int (int 2) else "" in
    stmt ":~ %s. [%d@%d%s]" (String.concat ", " (lits (1 + int 2))) weight
      (1 + int 2) terms
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Outcome comparison                                                   *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Models of (string list * Asp.Model.cost) list
  | Rejected of string

let outcome_of_models models =
  Models
    (List.map
       (fun m ->
         (List.map Asp.Atom.to_string (Asp.Model.to_list m), Asp.Model.cost m))
       models)

let run f =
  match f () with
  | models -> outcome_of_models models
  | exception Asp.Dfs.Unsupported msg -> Rejected msg
  | exception Asp.Naive.Unsupported msg -> Rejected msg

let pp_outcome = function
  | Rejected msg -> "Unsupported: " ^ msg
  | Models ms ->
      ms
      |> List.map (fun (atoms, cost) ->
             Printf.sprintf "{%s}%s" (String.concat "," atoms)
               (match cost with
               | [] -> ""
               | c ->
                   " @ "
                   ^ String.concat ";"
                       (List.map (fun (p, w) -> Printf.sprintf "%d@%d" w p) c)))
      |> String.concat " | "

let outcomes_agree a b =
  match (a, b) with
  | Rejected x, Rejected y -> x = y
  | Models xs, Models ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (ax, cx) (ay, cy) ->
             ax = ay && Asp.Model.compare_cost cx cy = 0)
           xs ys
  | _ -> false

let compare_on ~what ~names src a b =
  if not (outcomes_agree a b) then
    fail
      (Printf.sprintf "%s diverged on program:\n%s\n  %s: %s\n  %s: %s" what
         src (fst names) (pp_outcome a) (snd names) (pp_outcome b))

(* Every model the CDNL solver produced must pass the independent
   Gelfond–Lifschitz check, and the list must be strictly sorted (so it
   is also duplicate-free). The fallback oracle for programs the
   reference solvers cannot enumerate. *)
let assert_stable ~what src g models =
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        Asp.Model.compare a b < 0 && sorted rest
    | _ -> true
  in
  if not (sorted models) then
    fail (Printf.sprintf "%s: unsorted or duplicated models on:\n%s" what src);
  List.iter
    (fun m ->
      if not (Asp.Solver.is_stable_model g (Asp.Model.atoms m)) then
        fail
          (Printf.sprintf "%s produced a non-stable model {%s} on:\n%s" what
             (String.concat ","
                (List.map Asp.Atom.to_string (Asp.Model.to_list m)))
             src))
    models

(* the oracle caps stay at their historical default so the exhaustive
   paths remain fast; Dfs and Naive get the same bound so their rejection
   parity holds. The CDNL solver ignores the cap and must always answer. *)
let max_guess = 18

let diff_one src =
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  (* legacy parity: the retained DFS still agrees with the reference,
     including which programs are rejected and with what message *)
  let dfs = run (fun () -> Asp.Dfs.solve ~max_guess g) in
  let naive = run (fun () -> Asp.Naive.solve ~max_guess g) in
  compare_on ~what:"solve (dfs vs naive)" ~names:("dfs", "naive") src dfs naive;
  let cdnl_models = Asp.Solver.solve g in
  let cdnl = outcome_of_models cdnl_models in
  (match naive with
  | Models _ ->
      compare_on ~what:"solve (cdnl vs naive)" ~names:("cdnl", "naive") src
        cdnl naive
  | Rejected _ ->
      (* the oracles gave up; verify the CDNL answer independently *)
      assert_stable ~what:"solve (cdnl)" src g cdnl_models);
  (* optima *)
  let dfs_opt = run (fun () -> Asp.Dfs.solve_optimal ~max_guess g) in
  let naive_opt = run (fun () -> Asp.Naive.solve_optimal ~max_guess g) in
  compare_on ~what:"solve_optimal (dfs vs naive)" ~names:("dfs", "naive") src
    dfs_opt naive_opt;
  let cdnl_opt_models = Asp.Solver.solve_optimal g in
  let cdnl_opt = outcome_of_models cdnl_opt_models in
  (match naive_opt with
  | Models _ ->
      compare_on ~what:"solve_optimal (cdnl vs naive)" ~names:("cdnl", "naive")
        src cdnl_opt naive_opt
  | Rejected _ ->
      (* self-consistency: branch-and-bound must return exactly the
         minimum-cost slice of the full enumeration *)
      let best =
        List.fold_left
          (fun acc m ->
            let c = Asp.Model.cost m in
            match acc with
            | None -> Some c
            | Some b -> if Asp.Model.compare_cost c b < 0 then Some c else acc)
          None cdnl_models
      in
      let expected =
        match best with
        | None -> []
        | Some b ->
            List.filter
              (fun m -> Asp.Model.compare_cost (Asp.Model.cost m) b = 0)
              cdnl_models
      in
      compare_on ~what:"solve_optimal (cdnl B&B vs cdnl enumeration)"
        ~names:("b&b", "enum") src cdnl_opt (outcome_of_models expected));
  (* under a limit the solvers may surface different models (the
     enumeration orders differ), so compare the count and check that every
     limited model belongs to the full set *)
  let limited = Asp.Solver.solve ~limit:2 g in
  (match naive with
  | Rejected _ -> ()
  | Models full ->
      check Alcotest.int
        (Printf.sprintf "limited model count on:\n%s" src)
        (min 2 (List.length full))
        (List.length limited));
  List.iter
    (fun m ->
      if not (List.exists (Asp.Model.equal m) cdnl_models) then
        fail (Printf.sprintf "limited solve invented a model on:\n%s" src))
    limited;
  (* preprocessing and the cheap tier are pure accelerations: every
     switch combination must reproduce the default answer bit for bit *)
  List.iter
    (fun (what, config) ->
      let ms = Asp.Solver.solve ~config g in
      compare_on ~what ~names:(what, "default") src (outcome_of_models ms)
        cdnl)
    [
      ( "solve --no-preprocess",
        { Asp.Solver.Config.default with preprocess = false } );
      ("solve no-cheap", { Asp.Solver.Config.default with cheap_tier = false });
      ( "solve raw",
        {
          Asp.Solver.Config.default with
          preprocess = false;
          cheap_tier = false;
        } );
    ];
  (* guiding-path parallel enumeration, shared and isolated exchanges:
     the merged model sets and costs must equal the sequential run *)
  List.iter
    (fun (jobs, share) ->
      let r = Engine.Par.enumerate ~oversubscribe:true ~jobs ~share g in
      compare_on
        ~what:(Printf.sprintf "par jobs=%d share=%b" jobs share)
        ~names:("par", "seq") src
        (outcome_of_models r.Engine.Par.models)
        cdnl)
    [ (2, true); (2, false); (4, true); (4, false) ]

let test_differential_seeded () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 0xC9A; seed |] in
    diff_one (gen_program rng)
  done

(* hand-picked programs covering the corners the generator reaches only
   rarely *)
let test_differential_corners () =
  List.iter diff_one
    [
      (* choice bounds interacting with conditions *)
      "item(1). item(2). item(3). 1 { pick(X) : item(X) } 2.";
      (* choice atom also derivable by a plain rule *)
      "{ a }. a :- b. b.";
      "{ a }. a :- b. { b }.";
      (* empty-element choice still enforces its (trivial) bounds *)
      "1 { p(X) : q(X) } :- r. r.";
      (* multi-level strata under choices *)
      "{ a }. b :- not a. c :- b, not d. d :- a.";
      (* non-stratified programs with choices *)
      "{ c }. a :- not b, c. b :- not a.";
      (* odd loop: no models either way *)
      "p :- not p.";
      (* non-tight: positive recursion with external support *)
      "{ c }. p :- q. q :- p. p :- c.";
      "{ c }. p :- q. q :- p. p :- c. :- not p.";
      (* unfounded loop with no external support: atoms must stay false *)
      "p :- q. q :- p. r :- not p.";
      (* aggregates over choice-dependent atoms *)
      "item(1). item(2). { in(X) : item(X) }. :- #count { X : in(X) } > 1.";
      "n(1). n(2). { pick(X) : n(X) }. big :- #sum { X : pick(X) } >= 3.";
      (* aggregates in a non-stratified program: the oracles reject,
         the CDNL solver answers (verified by the GL check) *)
      "a :- not b. b :- not a. c :- #count { 1 : a } > 0.";
      (* weak constraints with negative weights: the mixed-sign lower
         bound must keep branch-and-bound sound *)
      "{ a ; b }. :~ a. [-2@1] :~ b. [1@1]";
      "{ a ; b ; c }. :~ a. [-1@2, x] :~ b. [-1@2, x] :~ c. [3@1]";
      (* weak tuple dedup across priorities *)
      "a. b. :~ a. [2@1, s] :~ b. [2@1, s] :~ a, b. [1@2]";
    ]

(* The non-stratified aggregate corner both oracles reject: pin the CDNL
   answer exactly, not just through the GL check. *)
let test_beyond_oracle_aggregate () =
  let src = "a :- not b. b :- not a. c :- #count { 1 : a } > 0." in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  (match run (fun () -> Asp.Naive.solve ~max_guess g) with
  | Rejected _ -> ()
  | Models _ -> fail "expected Naive to reject the non-stratified aggregate");
  let models =
    Asp.Solver.solve g
    |> List.map (fun m ->
           List.map Asp.Atom.to_string (Asp.Model.to_list m))
  in
  check
    Alcotest.(list (list string))
    "models of the non-stratified aggregate program"
    [ [ "a"; "c" ]; [ "b" ] ]
    models

(* Programs beyond the oracles' guess caps: Dfs and Naive reject, the
   CDNL solver must still enumerate. Full enumeration would be 2^20 and
   2^80 models, so the checks go through [limit] and [satisfiable]. *)
let test_beyond_guess_cap () =
  let check_rejected ~what g =
    (match run (fun () -> Asp.Dfs.solve ~max_guess g) with
    | Rejected _ -> ()
    | Models _ -> fail (what ^ ": expected Dfs to reject"));
    match run (fun () -> Asp.Naive.solve ~max_guess g) with
    | Rejected _ -> ()
    | Models _ -> fail (what ^ ": expected Naive to reject")
  in
  (* 20 choice atoms: beyond the historical test cap of 18 *)
  let wide =
    Printf.sprintf "{ %s }."
      (String.concat " ; " (List.init 20 (Printf.sprintf "x%d")))
  in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program wide) in
  check_rejected ~what:"wide choice" g;
  check Alcotest.bool "wide choice satisfiable" true (Asp.Solver.satisfiable g);
  let ms = Asp.Solver.solve ~limit:5 g in
  check Alcotest.int "wide choice limited count" 5 (List.length ms);
  assert_stable ~what:"wide choice" wide g ms;
  (* 40 negative loops (80 guess atoms): beyond even the old production
     solver's 64-atom fallback cap *)
  let loops =
    String.concat "\n"
      (List.init 40 (fun i ->
           Printf.sprintf "a%d :- not b%d. b%d :- not a%d." i i i i))
  in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program loops) in
  (match run (fun () -> Asp.Dfs.solve g) with
  | Rejected _ -> ()
  | Models _ -> fail "expected Dfs to reject 80 guess atoms at its default cap");
  check Alcotest.bool "80-atom loops satisfiable" true
    (Asp.Solver.satisfiable g);
  let ms = Asp.Solver.solve ~limit:5 g in
  check Alcotest.int "80-atom loops limited count" 5 (List.length ms);
  assert_stable ~what:"80-atom loops" loops g ms

(* The cheap-tier classifier: membership in the propagation-only
   fragment is decided before search, and the decision must be sound on
   non-tight inputs (foundedness holds because models are least
   fixpoints, not arbitrary supported sets). *)
let test_cheap_classifier () =
  let eligible src =
    Asp.Solver.cheap_eligible
      (Asp.Grounder.ground (Asp.Parser.parse_program src))
  in
  (* non-tight but inside the fragment: the lfp construction is founded,
     so the positive p/q loop cannot smuggle in an unfounded model *)
  check Alcotest.bool "non-tight choice-supported loop" true
    (eligible "{ c }. p :- q. q :- p. p :- c.");
  (* same program plus a negated constraint: negation leaves the
     fragment, CDNL must take over *)
  check Alcotest.bool "negated constraint rejects" false
    (eligible "{ c }. p :- q. q :- p. p :- c. :- not p.");
  (* a constraint pending on two free atoms cannot be resolved by
     forcing: full tier *)
  check Alcotest.bool "two-pending constraint rejects" false
    (eligible "{ a ; b }. :- a, b.");
  (* negation in a rule body leaves the fragment *)
  check Alcotest.bool "rule negation rejects" false
    (eligible "{ a }. b :- not a.");
  (* choice bounds leave the fragment *)
  check Alcotest.bool "choice bounds reject" false
    (eligible "1 { a ; b } 1.");
  (* classifier-proven unsat, no search: the forced closure violates a
     constraint in every candidate model *)
  let src = "{ c }. a :- c. a. :- a." in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  check Alcotest.bool "forced-contradiction still eligible" true
    (Asp.Solver.cheap_eligible g);
  let ms, s = Asp.Solver.solve_with_stats g in
  check Alcotest.int "forced contradiction is unsat" 0 (List.length ms);
  check Alcotest.bool "unsat proven in the cheap tier" true
    s.Asp.Solver.Stats.cheap;
  check Alcotest.int "no search needed" 0 s.Asp.Solver.Stats.guesses;
  (* the reference chain shape solves in the cheap tier *)
  let chain =
    "{ s }. a1 :- s. a2 :- a1. a3 :- a2. a4 :- a3. goal :- a4."
  in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program chain) in
  let ms, s = Asp.Solver.solve_with_stats g in
  check Alcotest.int "chain model count" 2 (List.length ms);
  check Alcotest.bool "chain solved in the cheap tier" true
    s.Asp.Solver.Stats.cheap

(* Preprocessing statistics: the pipeline must actually fire on shapes
   built to trigger each reduction, and report it in [Stats]. *)
let test_preprocess_stats () =
  (* facts force units through the completion; the cheap tier would
     bypass CDNL entirely, so pin it off to observe the preprocessor *)
  let no_cheap = { Asp.Solver.Config.default with cheap_tier = false } in
  let src = "a. b :- a. { c }. d :- c, not b." in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  let _, s = Asp.Solver.solve_with_stats ~config:no_cheap g in
  check Alcotest.bool "unit propagation fired"
    true (s.Asp.Solver.Stats.pre_units > 0);
  (* x and y only ever appear together in one body: the body variable is
     pure once the constraint removes the joint assignment *)
  let src = "a :- x, y. { x ; y }. :- x, y." in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  let ms, s = Asp.Solver.solve_with_stats ~config:no_cheap g in
  check Alcotest.int "pure-literal program models" 3 (List.length ms);
  check Alcotest.bool "some reduction fired" true
    (s.Asp.Solver.Stats.pre_units > 0
    || s.Asp.Solver.Stats.pre_pure > 0
    || s.Asp.Solver.Stats.pre_equivs > 0
    || s.Asp.Solver.Stats.pre_subsumed > 0);
  (* preprocessing off: all four counters stay at zero *)
  let raw = { no_cheap with preprocess = false } in
  let _, s0 = Asp.Solver.solve_with_stats ~config:raw g in
  check Alcotest.int "no-preprocess leaves units at 0" 0
    s0.Asp.Solver.Stats.pre_units;
  check Alcotest.int "no-preprocess leaves pure at 0" 0
    s0.Asp.Solver.Stats.pre_pure

let suites =
  [
    ( "asp.solver_diff",
      [
        Alcotest.test_case "100 seeded random programs" `Quick
          test_differential_seeded;
        Alcotest.test_case "corner programs" `Quick test_differential_corners;
        Alcotest.test_case "cheap-tier classifier" `Quick
          test_cheap_classifier;
        Alcotest.test_case "preprocessing statistics" `Quick
          test_preprocess_stats;
        Alcotest.test_case "non-stratified aggregate beyond the oracles"
          `Quick test_beyond_oracle_aggregate;
        Alcotest.test_case "programs beyond the oracle guess caps" `Quick
          test_beyond_guess_cap;
      ] );
  ]
