(* Differential tests: the production solver (Asp.Solver — interned atoms,
   watch-indexed propagation, pruned DFS) against the retained exhaustive
   reference (Asp.Naive) on seeded random ground programs. Both must agree
   on the model sets, the per-model weak-constraint costs, the optimal
   fronts, and on which programs are rejected as Unsupported. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Seeded random program generator                                      *)
(* ------------------------------------------------------------------ *)

(* Propositional programs over a small vocabulary, exercising facts,
   rules with default negation (stratified and not), choice rules with
   conditions and cardinality bounds, integrity constraints, weak
   constraints (including negative weights, which disable the solver's
   branch-and-bound), and #count/#sum aggregates. *)
let gen_program rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let n_atoms = 4 + int 4 in
  let atom i = Printf.sprintf "a%d" i in
  let rand_atom () = atom (int n_atoms) in
  let lit () = (if int 3 = 0 then "not " else "") ^ rand_atom () in
  let lits n = List.init n (fun _ -> lit ()) in
  let buf = Buffer.create 256 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* facts *)
  for _ = 1 to 1 + int 2 do
    stmt "%s." (rand_atom ())
  done;
  (* rules *)
  for _ = 1 to 2 + int 4 do
    stmt "%s :- %s." (rand_atom ()) (String.concat ", " (lits (1 + int 3)))
  done;
  (* choice rules *)
  for _ = 1 to 1 + int 2 do
    let elems =
      List.init (1 + int 3) (fun _ ->
          if bool () then rand_atom ()
          else Printf.sprintf "%s : %s" (rand_atom ()) (rand_atom ()))
    in
    let body =
      match int 3 with
      | 0 -> ""
      | n -> " :- " ^ String.concat ", " (lits n)
    in
    let lower = if int 3 = 0 then string_of_int (int 2) ^ " " else "" in
    let upper = if int 3 = 0 then " " ^ string_of_int (1 + int 2) else "" in
    stmt "%s{ %s }%s%s." lower (String.concat " ; " elems) upper body
  done;
  (* integrity constraints *)
  for _ = 1 to int 3 do
    stmt ":- %s." (String.concat ", " (lits (1 + int 2)))
  done;
  (* aggregates, occasionally (surface syntax is single-element; ground
     multi-element aggregates come from variables, covered by the corner
     programs below) *)
  if int 3 = 0 then begin
    let op = if bool () then ">" else "<=" in
    let agg = if bool () then "#count" else "#sum" in
    let body =
      Printf.sprintf "%s { %d : %s } %s %d" agg (1 + int 3)
        (String.concat ", " (lits (1 + int 2)))
        op (int 3)
    in
    if bool () then stmt ":- %s." body else stmt "%s :- %s." (rand_atom ()) body
  end;
  (* weak constraints *)
  for _ = 1 to int 3 do
    let weight = int 6 - 2 in
    let terms = if bool () then ", t" ^ string_of_int (int 2) else "" in
    stmt ":~ %s. [%d@%d%s]" (String.concat ", " (lits (1 + int 2))) weight
      (1 + int 2) terms
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Outcome comparison                                                   *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Models of (string list * Asp.Model.cost) list
  | Rejected of string

let outcome_of_models models =
  Models
    (List.map
       (fun m ->
         (List.map Asp.Atom.to_string (Asp.Model.to_list m), Asp.Model.cost m))
       models)

let run f =
  match f () with
  | models -> outcome_of_models models
  | exception Asp.Solver.Unsupported msg -> Rejected msg
  | exception Asp.Naive.Unsupported msg -> Rejected msg

let pp_outcome = function
  | Rejected msg -> "Unsupported: " ^ msg
  | Models ms ->
      ms
      |> List.map (fun (atoms, cost) ->
             Printf.sprintf "{%s}%s" (String.concat "," atoms)
               (match cost with
               | [] -> ""
               | c ->
                   " @ "
                   ^ String.concat ";"
                       (List.map (fun (p, w) -> Printf.sprintf "%d@%d" w p) c)))
      |> String.concat " | "

let outcomes_agree a b =
  match (a, b) with
  | Rejected x, Rejected y -> x = y
  | Models xs, Models ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (ax, cx) (ay, cy) ->
             ax = ay && Asp.Model.compare_cost cx cy = 0)
           xs ys
  | _ -> false

let compare_on ~what src fast slow =
  let f = run fast and s = run slow in
  if not (outcomes_agree f s) then
    fail
      (Printf.sprintf
         "%s diverged on program:\n%s\n  solver: %s\n  naive:  %s" what src
         (pp_outcome f) (pp_outcome s))

(* the naive cap stays at its historical default so the exhaustive paths
   remain fast; both sides get the same bound so rejection parity holds *)
let max_guess = 18

let diff_one src =
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  compare_on ~what:"solve" src
    (fun () -> Asp.Solver.solve ~max_guess g)
    (fun () -> Asp.Naive.solve ~max_guess g);
  compare_on ~what:"solve_optimal" src
    (fun () -> Asp.Solver.solve_optimal ~max_guess g)
    (fun () -> Asp.Naive.solve_optimal ~max_guess g);
  (* under a limit the two solvers may surface different models (the
     enumeration orders differ), so compare the count and check that every
     limited model belongs to the full front *)
  let limited =
    match Asp.Solver.solve ~limit:2 ~max_guess g with
    | ms -> Some ms
    | exception Asp.Solver.Unsupported _ -> None
  in
  let limited_ref =
    match Asp.Naive.solve ~limit:2 ~max_guess g with
    | ms -> Some ms
    | exception Asp.Naive.Unsupported _ -> None
  in
  match (limited, limited_ref) with
  | None, None -> ()
  | Some limited, Some limited_ref ->
      check Alcotest.int
        (Printf.sprintf "limited model count on:\n%s" src)
        (List.length limited_ref) (List.length limited);
      let full = Asp.Naive.solve ~max_guess g in
      List.iter
        (fun m ->
          if not (List.exists (Asp.Model.equal m) full) then
            fail
              (Printf.sprintf "limited solve invented a model on:\n%s" src))
        limited
  | _ -> fail (Printf.sprintf "rejection divergence on:\n%s" src)

let test_differential_seeded () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 0xC9A; seed |] in
    diff_one (gen_program rng)
  done

(* hand-picked programs covering the corners the generator reaches only
   rarely *)
let test_differential_corners () =
  List.iter diff_one
    [
      (* choice bounds interacting with conditions *)
      "item(1). item(2). item(3). 1 { pick(X) : item(X) } 2.";
      (* choice atom also derivable by a plain rule *)
      "{ a }. a :- b. b.";
      "{ a }. a :- b. { b }.";
      (* empty-element choice still enforces its (trivial) bounds *)
      "1 { p(X) : q(X) } :- r. r.";
      (* multi-level strata under choices *)
      "{ a }. b :- not a. c :- b, not d. d :- a.";
      (* non-stratified fallback with choices *)
      "{ c }. a :- not b, c. b :- not a.";
      (* odd loop: no models either way *)
      "p :- not p.";
      (* aggregates over choice-dependent atoms *)
      "item(1). item(2). { in(X) : item(X) }. :- #count { X : in(X) } > 1.";
      "n(1). n(2). { pick(X) : n(X) }. big :- #sum { X : pick(X) } >= 3.";
      (* aggregates in a non-stratified program must be rejected by both *)
      "a :- not b. b :- not a. c :- #count { 1 : a } > 0.";
      (* weak constraints with negative weights: branch-and-bound must be
         disabled, optima must still match *)
      "{ a ; b }. :~ a. [-2@1] :~ b. [1@1]";
      "{ a ; b ; c }. :~ a. [-1@2, x] :~ b. [-1@2, x] :~ c. [3@1]";
      (* weak tuple dedup across priorities *)
      "a. b. :~ a. [2@1, s] :~ b. [2@1, s] :~ a, b. [1@2]";
      (* guess bound parity: 20 > max_guess atoms rejected by both *)
      (let atoms =
         String.concat " ; " (List.init 20 (Printf.sprintf "x%d"))
       in
       Printf.sprintf "{ %s }." atoms);
    ]

let suites =
  [
    ( "asp.solver_diff",
      [
        Alcotest.test_case "100 seeded random programs" `Quick
          test_differential_seeded;
        Alcotest.test_case "corner programs" `Quick test_differential_corners;
      ] );
  ]
