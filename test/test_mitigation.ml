(* Tests for mitigation selection and cost-benefit optimization
   (lib/mitigation), cross-checked against brute force. *)

let check = Alcotest.check
let fail = Alcotest.fail

let m1 = Mitigation.Action.make ~id:"M1" ~name:"User Training" ~cost:2 ~blocks:[ "F4" ]
let m2 = Mitigation.Action.make ~id:"M2" ~name:"Endpoint Security" ~cost:5 ~blocks:[ "F4" ]
let m3 = Mitigation.Action.make ~id:"M3" ~name:"Redundant Valve" ~cost:8 ~blocks:[ "F2" ]
let m4 = Mitigation.Action.make ~id:"M4" ~name:"Alert Channel" ~cost:3 ~blocks:[ "F3" ]

let actions = [ m1; m2; m3; m4 ]

(* Residual loss model: start at 100; each unblocked hazard costs. F4 is
   blocked by M1 or M2; F2 by M3; F3 by M4. *)
let residual ~active =
  let blocked f =
    List.exists
      (fun id ->
        match Mitigation.Action.find id actions with
        | Some a -> List.mem f a.Mitigation.Action.blocks
        | None -> false)
      active
  in
  (if blocked "F4" then 0 else 60)
  + (if blocked "F2" then 0 else 30)
  + if blocked "F3" then 0 else 10

let problem = { Mitigation.Optimizer.actions; residual }

(* -------------------------------------------------------------------- *)
(* Action                                                                *)
(* -------------------------------------------------------------------- *)

let test_action_basics () =
  check Alcotest.int "total cost" 7
    (Mitigation.Action.total_cost actions [ "M1"; "M2" ]);
  check (Alcotest.list Alcotest.string) "blocks relation" [ "F4" ]
    (Mitigation.Action.blocks_relation actions "M1");
  check (Alcotest.list Alcotest.string) "unknown id" []
    (Mitigation.Action.blocks_relation actions "MX");
  match Mitigation.Action.make ~id:"X" ~name:"X" ~cost:(-1) ~blocks:[] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "negative cost accepted"

(* -------------------------------------------------------------------- *)
(* Optimizer                                                             *)
(* -------------------------------------------------------------------- *)

let test_optimal_unbounded () =
  let s = Mitigation.Optimizer.optimal problem in
  (* blocking everything costs M1(2)+M3(8)+M4(3)=13 (M1 cheaper than M2) *)
  check (Alcotest.list Alcotest.string) "selection" [ "M1"; "M3"; "M4" ]
    s.Mitigation.Optimizer.selected;
  check Alcotest.int "cost" 13 s.Mitigation.Optimizer.cost;
  check Alcotest.int "residual" 0 s.Mitigation.Optimizer.residual

let test_optimal_budgeted () =
  (* budget 5: M1 (block F4, -60) + M4 (block F3, -10) = cost 5 *)
  let s = Mitigation.Optimizer.optimal ~budget:5 problem in
  check (Alcotest.list Alcotest.string) "selection" [ "M1"; "M4" ]
    s.Mitigation.Optimizer.selected;
  check Alcotest.int "residual" 30 s.Mitigation.Optimizer.residual;
  (* budget 2: only M1 fits *)
  let s = Mitigation.Optimizer.optimal ~budget:2 problem in
  check (Alcotest.list Alcotest.string) "tight budget" [ "M1" ]
    s.Mitigation.Optimizer.selected

let test_optimal_zero_budget () =
  let s = Mitigation.Optimizer.optimal ~budget:0 problem in
  check (Alcotest.list Alcotest.string) "nothing affordable" []
    s.Mitigation.Optimizer.selected;
  check Alcotest.int "full residual" 100 s.Mitigation.Optimizer.residual

let test_benefit () =
  let s = Mitigation.Optimizer.optimal ~budget:5 problem in
  check Alcotest.int "benefit" 70 (Mitigation.Optimizer.benefit problem s)

let test_pareto_front () =
  let front = Mitigation.Optimizer.pareto problem in
  (* front must be sorted by cost with strictly decreasing residual *)
  let rec strictly_improving = function
    | a :: (b :: _ as rest) ->
        a.Mitigation.Optimizer.cost < b.Mitigation.Optimizer.cost
        && a.Mitigation.Optimizer.residual > b.Mitigation.Optimizer.residual
        && strictly_improving rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "front shape" true (strictly_improving front);
  (* endpoints: empty selection and the full-protection optimum *)
  check Alcotest.int "starts at zero cost" 0
    (List.hd front).Mitigation.Optimizer.cost;
  check Alcotest.int "ends at zero residual" 0
    (List.nth front (List.length front - 1)).Mitigation.Optimizer.residual

let test_budget_sweep_crossovers () =
  let sweep =
    Mitigation.Optimizer.budget_sweep problem
      ~budgets:[ 0; 1; 2; 5; 10; 13; 20 ]
  in
  let residual_at b = (List.assoc b sweep).Mitigation.Optimizer.residual in
  check Alcotest.int "b=0" 100 (residual_at 0);
  check Alcotest.int "b=1 still nothing" 100 (residual_at 1);
  check Alcotest.int "b=2 unlocks M1" 40 (residual_at 2);
  check Alcotest.int "b=5 adds M4" 30 (residual_at 5);
  check Alcotest.int "b=10 M1+M3" 10 (residual_at 10);
  check Alcotest.int "b=13 everything" 0 (residual_at 13);
  check Alcotest.int "b=20 no better than 13" 0 (residual_at 20);
  (* monotone decreasing residual in budget *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        a.Mitigation.Optimizer.residual >= b.Mitigation.Optimizer.residual
        && monotone rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "monotone" true (monotone sweep)

let test_multi_phase () =
  (* §IV.D: "if a company has a limited budget let's first deal with the
     most potential and severe risk and later focus on the other ones" *)
  let phases = Mitigation.Optimizer.multi_phase problem ~phase_budgets:[ 2; 3; 8 ] in
  match phases with
  | [ p1; p2; p3 ] ->
      check (Alcotest.list Alcotest.string) "phase 1: biggest risk first"
        [ "M1" ] p1.Mitigation.Optimizer.selected;
      check (Alcotest.list Alcotest.string) "phase 2 adds alert channel"
        [ "M1"; "M4" ] p2.Mitigation.Optimizer.selected;
      check (Alcotest.list Alcotest.string) "phase 3 completes"
        [ "M1"; "M3"; "M4" ] p3.Mitigation.Optimizer.selected;
      check Alcotest.int "final residual" 0 p3.Mitigation.Optimizer.residual
  | _ -> fail "expected three phases"

let test_multi_phase_never_worse () =
  let phases = Mitigation.Optimizer.multi_phase problem ~phase_budgets:[ 1; 1; 1 ] in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        a.Mitigation.Optimizer.residual >= b.Mitigation.Optimizer.residual
        && non_increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "residual never grows" true (non_increasing phases)

(* brute-force cross-check on random problems *)
let prop_optimal_matches_bruteforce =
  let gen =
    let open QCheck.Gen in
    let action i =
      map2
        (fun cost impact -> (Printf.sprintf "A%d" i, cost, impact))
        (int_range 1 9) (int_range 0 50)
    in
    map2
      (fun specs budget -> (specs, budget))
      (flatten_l (List.init 5 action))
      (int_range 0 25)
  in
  QCheck.Test.make ~name:"optimizer: exact vs brute force" ~count:100
    (QCheck.make gen)
    (fun (specs, budget) ->
      let actions =
        List.map
          (fun (id, cost, _) ->
            Mitigation.Action.make ~id ~name:id ~cost ~blocks:[ id ])
          specs
      in
      let residual ~active =
        List.fold_left
          (fun acc (id, _, impact) ->
            if List.mem id active then acc else acc + impact)
          0 specs
      in
      let p = { Mitigation.Optimizer.actions; residual } in
      let s = Mitigation.Optimizer.optimal ~budget p in
      (* brute force over all 32 subsets *)
      let rec subsets = function
        | [] -> [ [] ]
        | x :: rest ->
            let sub = subsets rest in
            sub @ List.map (fun s -> x :: s) sub
      in
      let best =
        subsets (List.map (fun (id, _, _) -> id) specs)
        |> List.filter (fun ids -> Mitigation.Action.total_cost actions ids <= budget)
        |> List.map (fun ids -> residual ~active:ids)
        |> List.fold_left min max_int
      in
      s.Mitigation.Optimizer.residual = best
      && s.Mitigation.Optimizer.cost <= budget)

(* 20-action catalog: the sequential searches stream through
   fold_subsets_within_budget in O(actions) memory — this used to
   materialize all 2^20 subsets before scoring. *)
let test_optimal_twenty_actions () =
  let n = 20 in
  let actions =
    List.init n (fun i ->
        Mitigation.Action.make
          ~id:(Printf.sprintf "A%02d" i)
          ~name:(Printf.sprintf "A%02d" i)
          ~cost:(1 + (i mod 7))
          ~blocks:[])
  in
  (* each action i removes 2i+1 loss units: optimum = take everything *)
  let residual ~active =
    let covered =
      List.fold_left
        (fun acc id -> acc + (2 * int_of_string (String.sub id 1 2)) + 1)
        0 active
    in
    (n * n) - covered
  in
  let p = { Mitigation.Optimizer.actions; residual } in
  let s = Mitigation.Optimizer.optimal p in
  check Alcotest.int "residual at full selection" 0
    s.Mitigation.Optimizer.residual;
  check Alcotest.int "all selected" n
    (List.length s.Mitigation.Optimizer.selected);
  (* tight budget prunes almost the whole tree *)
  let s2 = Mitigation.Optimizer.optimal ~budget:2 p in
  check Alcotest.bool "budget respected" true
    (s2.Mitigation.Optimizer.cost <= 2)

(* -------------------------------------------------------------------- *)
(* Engine-backed frontier vs the scratch oracle                          *)
(* -------------------------------------------------------------------- *)

let sol = Alcotest.testable Mitigation.Optimizer.pp_solution (fun a b ->
    a.Mitigation.Optimizer.selected = b.Mitigation.Optimizer.selected
    && a.Mitigation.Optimizer.cost = b.Mitigation.Optimizer.cost
    && a.Mitigation.Optimizer.residual = b.Mitigation.Optimizer.residual)

(* a small frontier (8 actions) keeps the cold-ground oracle affordable *)
let sub_frontier () =
  let actions =
    List.filteri (fun i _ -> i < 8) Cpsrisk.Hierarchy.frontier_actions
  in
  Mitigation.Frontier.make ~actions ~delta:Cpsrisk.Hierarchy.frontier_delta
    ~measure:Cpsrisk.Hierarchy.frontier_measure
    (Engine.Job.prepare (Cpsrisk.Hierarchy.frontier_spec ()))

let test_frontier_optimal_matches_scratch () =
  let f = sub_frontier () in
  let oracle = Mitigation.Frontier.scratch_problem f in
  List.iter
    (fun budget ->
      let got, _ = Mitigation.Frontier.optimal ?budget f in
      let want = Mitigation.Optimizer.optimal ?budget oracle in
      check sol
        (Printf.sprintf "budget %s"
           (match budget with None -> "-" | Some b -> string_of_int b))
        want got)
    [ None; Some 0; Some 5; Some 11 ]

let test_frontier_pareto_matches_scratch () =
  let f = sub_frontier () in
  let got, report = Mitigation.Frontier.pareto ~jobs:2 f in
  let want = Mitigation.Optimizer.pareto (Mitigation.Frontier.scratch_problem f) in
  check (Alcotest.list sol) "identical front" want got;
  check Alcotest.int "every subset evaluated" 256
    report.Mitigation.Frontier.r_evals

let test_frontier_budget_sweep_matches_scratch () =
  let f = sub_frontier () in
  let budgets = [ 3; 9; 15; 18; 21; 24 ] in
  let got, report = Mitigation.Frontier.budget_sweep f ~budgets in
  let want =
    Mitigation.Optimizer.budget_sweep
      (Mitigation.Frontier.scratch_problem f)
      ~budgets
  in
  List.iter2
    (fun (b, w) (b', g) ->
      check Alcotest.int "budget order" b b';
      check sol (Printf.sprintf "optimum at budget %d" b) w g)
    want got;
  (* ascending budgets re-visit the smaller budgets' subsets: the shared
     cache must absorb well over half of the evaluations *)
  check Alcotest.bool "sweep mostly deduped" true
    (report.Mitigation.Frontier.r_hits * 2 > report.Mitigation.Frontier.r_evals)

let test_frontier_full_catalog_consistent () =
  (* the full 12-action catalog, warm path only: branch-and-bound and the
     parallel sweep must agree with the retained sequential searches over
     the same cached problem *)
  let f = Cpsrisk.Hierarchy.frontier () in
  let p = Mitigation.Frontier.problem f in
  let got, report = Mitigation.Frontier.optimal ~budget:9 f in
  check sol "b&b equals exhaustive" (Mitigation.Optimizer.optimal ~budget:9 p) got;
  check Alcotest.bool "b&b actually pruned" true
    (report.Mitigation.Frontier.r_pruned > 0);
  let front, _ = Mitigation.Frontier.pareto f in
  check (Alcotest.list sol) "pareto equals sequential"
    (Mitigation.Optimizer.pareto p) front

let test_frontier_monotone_residual () =
  (* the b&b licence: activating more shields never increases the
     residual — checked along nested chains of the catalog *)
  let f = Cpsrisk.Hierarchy.frontier () in
  let ids =
    List.map
      (fun (a : Mitigation.Action.t) -> a.Mitigation.Action.id)
      (Mitigation.Frontier.actions f)
  in
  let rec chains acc = function
    | [] -> [ acc ]
    | id :: rest -> acc :: chains (id :: acc) rest
  in
  let residuals =
    List.map
      (fun c -> (fst (Mitigation.Frontier.evaluate f c)).Mitigation.Optimizer.residual)
      (chains [] ids)
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "residual monotone along chain" true
    (non_increasing residuals)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "mitigation.action",
      [ Alcotest.test_case "basics" `Quick test_action_basics ] );
    ( "mitigation.optimizer",
      [
        Alcotest.test_case "optimal unbounded" `Quick test_optimal_unbounded;
        Alcotest.test_case "optimal budgeted" `Quick test_optimal_budgeted;
        Alcotest.test_case "zero budget" `Quick test_optimal_zero_budget;
        Alcotest.test_case "benefit" `Quick test_benefit;
        Alcotest.test_case "pareto front" `Quick test_pareto_front;
        Alcotest.test_case "budget sweep crossovers" `Quick
          test_budget_sweep_crossovers;
        Alcotest.test_case "multi-phase plan" `Quick test_multi_phase;
        Alcotest.test_case "multi-phase monotone" `Quick
          test_multi_phase_never_worse;
        Alcotest.test_case "twenty-action catalog" `Quick
          test_optimal_twenty_actions;
        qcheck prop_optimal_matches_bruteforce;
      ] );
    ( "mitigation.frontier",
      [
        Alcotest.test_case "optimal matches scratch" `Quick
          test_frontier_optimal_matches_scratch;
        Alcotest.test_case "pareto matches scratch" `Quick
          test_frontier_pareto_matches_scratch;
        Alcotest.test_case "budget sweep matches scratch" `Quick
          test_frontier_budget_sweep_matches_scratch;
        Alcotest.test_case "full catalog consistent" `Quick
          test_frontier_full_catalog_consistent;
        Alcotest.test_case "monotone residual" `Quick
          test_frontier_monotone_residual;
      ] );
  ]
