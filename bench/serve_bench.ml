(* The assessment service end to end, over its real Unix-domain socket:
   what a client actually pays for a 256-delta what-if sweep against

   - cold:          a fresh daemon with an empty cache directory — every
                    unique delta is ground and solved;
   - warm-process:  the same daemon asked again — answered from the
                    in-memory cache;
   - warm-disk:     a RESTARTED daemon on the same cache directory — the
                    memory cache is gone, every answer comes off disk
                    (the response's own accounting proves zero fresh
                    grounding and zero fresh solving);
   - burst:         single-delta requests hammered from concurrent client
                    connections — socket + queue overhead and request
                    coalescing, reported as requests/s.

   Emits JSON (committed as BENCH_serve.json at the repo root for the
   full run; `dune build @serve-bench-smoke` runs a seconds-scale subset
   as part of the test tree). *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let delta_line (d : Engine.Delta.t) =
  Printf.sprintf "%s / %s"
    (match d.Engine.Delta.faults with [] -> "-" | fs -> String.concat "," fs)
    (match d.Engine.Delta.mitigations with
    | [] -> "-"
    | ms -> String.concat "," ms)

let socket = "serve_bench.sock"
let cache_dir = "serve_bench_cache"

let start_daemon () =
  let th =
    Thread.create
      (fun () ->
        Serve.Server.run
          {
            Serve.Server.socket;
            cache_dir = Some cache_dir;
            cache_mb = None;
            jobs = None;
            log = None;
          })
      ()
  in
  let rec await tries =
    match Serve.Client.connect socket with
    | c ->
        Serve.Client.close c
    | exception Unix.Unix_error _ ->
        if tries = 0 then failwith "daemon did not come up";
        Thread.delay 0.05;
        await (tries - 1)
  in
  await 200;
  th

let must = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "serve_bench: %s" e)

let geti field json =
  match Serve.Json.mem_int field json with
  | Some v -> v
  | None -> failwith (Printf.sprintf "serve_bench: response lacks %S" field)

type entry = {
  name : string;
  wall_s : float;
  hits : int;
  disk_hits : int;
  misses : int;
}

let sweep_entry name client muts =
  let response, s =
    wall (fun () ->
        must
          (Serve.Client.call client
             (Serve.Protocol.Sweep { model = "wt"; mutations = muts; jobs = None })))
  in
  ( {
      name;
      wall_s = s;
      hits = geti "hits" response;
      disk_hits = geti "disk_hits" response;
      misses = geti "misses" response;
    },
    response )

let run ~smoke ~out =
  let n = if smoke then 24 else 256 in
  let horizon = if smoke then 6 else 12 in
  let seed = 1 in
  let deltas = Cpsrisk.Sweeps.random_deltas ~seed n in
  let muts = String.concat "\n" (List.map delta_line deltas) in
  rm_rf cache_dir;
  (try Sys.remove socket with Sys_error _ -> ());

  let load client =
    let _, s =
      wall (fun () ->
          must
            (Serve.Client.call client
               (Serve.Protocol.Load_model
                  {
                    name = "wt";
                    backend = Serve.Protocol.Water_tank;
                    horizon = Some horizon;
                    model_src = None;
                  })))
    in
    s
  in

  (* --- daemon 1: cold sweep, then the warm-process repeat ------------ *)
  let daemon = start_daemon () in
  let client = Serve.Client.connect socket in
  let load1_s = load client in
  let cold, cold_results = sweep_entry "cold" client muts in
  Printf.eprintf "  load          : %8.4fs (fresh daemon)\n%!" load1_s;
  Printf.eprintf "  cold          : %8.4fs, %d hits / %d disk / %d fresh\n%!"
    cold.wall_s cold.hits cold.disk_hits cold.misses;
  let warm_mem, warm_mem_results = sweep_entry "warm-process" client muts in
  Printf.eprintf "  warm-process  : %8.4fs (%.1fx cold), %d hits / %d disk / %d fresh\n%!"
    warm_mem.wall_s
    (cold.wall_s /. warm_mem.wall_s)
    warm_mem.hits warm_mem.disk_hits warm_mem.misses;

  (* --- burst: concurrent single-delta requests over own connections -- *)
  let burst_total = if smoke then 48 else 192 in
  let threads = 8 in
  let per_thread = burst_total / threads in
  let (), burst_s =
    wall (fun () ->
        let ts =
          List.init threads (fun t ->
              Thread.create
                (fun () ->
                  let c = Serve.Client.connect socket in
                  for i = 0 to per_thread - 1 do
                    let d = List.nth deltas ((t * per_thread + i) mod n) in
                    ignore
                      (must
                         (Serve.Client.call c
                            (Serve.Protocol.Sweep
                               {
                                 model = "wt";
                                 mutations = delta_line d;
                                 jobs = None;
                               })))
                  done;
                  Serve.Client.close c)
                ())
        in
        List.iter Thread.join ts)
  in
  let status = must (Serve.Client.call client Serve.Protocol.Status) in
  let queue =
    match Serve.Json.member "queue" status with
    | Some q -> q
    | None -> failwith "status lacks queue"
  in
  let batches = geti "batches" queue in
  let max_batch = geti "max_batch" queue in
  Printf.eprintf
    "  burst         : %8.4fs, %d requests -> %.0f req/s, %d queue batches (max %d)\n%!"
    burst_s burst_total
    (float_of_int burst_total /. burst_s)
    batches max_batch;
  ignore (must (Serve.Client.call client Serve.Protocol.Shutdown));
  Serve.Client.close client;
  Thread.join daemon;

  (* --- daemon 2: same cache directory, memory gone — disk must serve -- *)
  let daemon = start_daemon () in
  let client = Serve.Client.connect socket in
  let load2_s = load client in
  let warm_disk, disk_results = sweep_entry "warm-disk" client muts in
  Printf.eprintf
    "  warm-disk     : %8.4fs (%.1fx cold), %d hits / %d disk / %d fresh (restarted daemon)\n%!"
    warm_disk.wall_s
    (cold.wall_s /. warm_disk.wall_s)
    warm_disk.hits warm_disk.disk_hits warm_disk.misses;
  ignore (must (Serve.Client.call client Serve.Protocol.Shutdown));
  Serve.Client.close client;
  Thread.join daemon;
  rm_rf cache_dir;

  (* the restarted daemon must have done no fresh work, and all three
     sweeps must agree job for job *)
  if warm_disk.misses <> 0 then begin
    Printf.eprintf "warm-disk sweep was not fully served from the store\n";
    exit 2
  end;
  (* per-job "source" is provenance, not an answer — it legitimately
     differs between generations (fresh vs memory vs disk) *)
  let rec strip_source = function
    | Serve.Json.Obj fields ->
        Serve.Json.Obj
          (List.filter_map
             (fun (k, v) ->
               if k = "source" then None else Some (k, strip_source v))
             fields)
    | Serve.Json.List xs -> Serve.Json.List (List.map strip_source xs)
    | j -> j
  in
  let results j = Option.map strip_source (Serve.Json.member "results" j) in
  if results disk_results <> results cold_results
     || results warm_mem_results <> results cold_results
  then begin
    Printf.eprintf "served sweeps disagree across daemon generations\n";
    exit 2
  end;

  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"assessment-service\",\n";
  p "  \"mode\": %S,\n" (if smoke then "smoke" else "full");
  p "  \"workload\": \"water-tank temporal ASP, seeded-random deltas, over the Unix-domain socket\",\n";
  p "  \"deltas\": %d,\n" n;
  p "  \"horizon\": %d,\n" horizon;
  p "  \"seed\": %d,\n" seed;
  p "  \"load_s\": [%.6f, %.6f],\n" load1_s load2_s;
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      p
        "    {\"name\": %S, \"wall_s\": %.6f, \"speedup_vs_cold\": %.2f, \
         \"hits\": %d, \"disk_hits\": %d, \"misses\": %d}%s\n"
        e.name e.wall_s
        (cold.wall_s /. e.wall_s)
        e.hits e.disk_hits e.misses
        (if i = 2 then "" else ",")
    )
    [ cold; warm_mem; warm_disk ];
  p "  ],\n";
  p "  \"burst\": {\"requests\": %d, \"client_threads\": %d, \"wall_s\": %.6f, \
     \"requests_per_s\": %.0f, \"queue_batches\": %d, \"max_batch\": %d}\n"
    burst_total threads burst_s
    (float_of_int burst_total /. burst_s)
    batches max_batch;
  p "}\n";
  close_out oc;
  Printf.eprintf "wrote %s\n" out;
  let sweep_row (e : entry) =
    Registry.row
      ~note:
        (Printf.sprintf "%.1fx cold, %d hits / %d disk / %d fresh"
           (cold.wall_s /. e.wall_s)
           e.hits e.disk_hits e.misses)
      ~param:(string_of_int n) e.name e.wall_s
  in
  List.map sweep_row [ cold; warm_mem; warm_disk ]
  @ [
      Registry.row
        ~note:
          (Printf.sprintf "%.0f req/s over %d client threads"
             (float_of_int burst_total /. burst_s)
             threads)
        ~param:(string_of_int burst_total) "burst" burst_s;
    ]

let bench =
  {
    Registry.name = "serve";
    descr = "assessment daemon end to end over its Unix socket";
    default_out = "BENCH_serve.json";
    run;
  }
