(* Solver scaling sweep: the production solving path (Asp.Solver — interned
   atoms, watch-indexed propagation, pruned DFS) against the retained
   exhaustive reference (Asp.Naive), on three workload shapes:

   - chain n:   deterministic transitive closure over an n-node chain; no
                choices, measures pure propagation (semi-naive watch index
                vs scan-all-rules fixpoint).
   - choice k:  k free switches with one pinned atom, 2^(k-1) stable
                models; output-bound enumeration.
   - pinned k:  k choice atoms each pinned by a constraint, exactly one
                stable model; the reference walks 2^k subsets while the
                pruned search closes every wrong branch immediately.

   Emits machine-readable JSON (committed as BENCH_solver.json at the repo
   root for the full sweep; `dune build @bench-smoke` runs a seconds-scale
   subset as part of the test tree). *)

let time ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let pinned_program k =
  let buf = Buffer.create 256 in
  let atoms = List.init k (Printf.sprintf "x%d") in
  Buffer.add_string buf
    (Printf.sprintf "{ %s }.\n" (String.concat " ; " atoms));
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf ":- not %s.\n" a))
    atoms;
  Asp.Parser.parse_program (Buffer.contents buf)

type entry = {
  workload : string;
  param : int;
  atoms : int;
  models : int;
  solver_s : float;
  naive_s : float option; (* None above the reference's budget *)
  stats : Asp.Solver.Stats.t;
}

let run_workload ~reps ~naive_cap name param program =
  let g = Asp.Grounder.ground program in
  let (models, stats), solver_s =
    time ~reps (fun () -> Asp.Solver.solve_with_stats g)
  in
  let naive_s =
    if param <= naive_cap then begin
      let naive_models, dt =
        time ~reps (fun () -> Asp.Naive.solve ~max_guess:64 g)
      in
      (* the sweep doubles as a coarse differential check *)
      if List.length naive_models <> List.length models then begin
        Printf.eprintf "solver/naive disagree on %s %d: %d vs %d models\n"
          name param (List.length models) (List.length naive_models);
        exit 2
      end;
      Some dt
    end
    else None
  in
  Printf.eprintf "  %s %2d: solver %8.4fs%s, %d models\n%!" name param
    solver_s
    (match naive_s with
    | Some t -> Printf.sprintf ", naive %8.4fs (%.1fx)" t (t /. solver_s)
    | None -> ", naive skipped")
    (List.length models);
  {
    workload = name;
    param;
    atoms = Asp.Ground.atom_count g;
    models = List.length models;
    solver_s;
    naive_s;
    stats;
  }

let emit_json out mode entries =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"asp-solver-scaling\",\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"reference\": \"Asp.Naive (exhaustive subset enumeration)\",\n";
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      let s = e.stats in
      p
        "    {\"workload\": %S, \"param\": %d, \"ground_atoms\": %d, \
         \"models\": %d,\n\
        \     \"solver_s\": %.6f, \"naive_s\": %s, \"speedup\": %s,\n\
        \     \"stats\": {\"guesses\": %d, \"pruned\": %d, \"firings\": %d, \
         \"leaves\": %d}}%s\n"
        e.workload e.param e.atoms e.models e.solver_s
        (match e.naive_s with
        | Some t -> Printf.sprintf "%.6f" t
        | None -> "null")
        (match e.naive_s with
        | Some t -> Printf.sprintf "%.2f" (t /. e.solver_s)
        | None -> "null")
        s.Asp.Solver.Stats.guesses s.Asp.Solver.Stats.pruned
        s.Asp.Solver.Stats.firings s.Asp.Solver.Stats.leaves
        (if i = List.length entries - 1 then "" else ",");
      ())
    entries;
  p "  ]\n}\n";
  close_out oc

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out = ref "BENCH_solver.json" in
  Array.iteri
    (fun i a -> if a = "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1))
    Sys.argv;
  let reps = if smoke then 1 else 3 in
  (* chain: pure propagation, no guessing *)
  let chain_ns = if smoke then [ 20; 40 ] else [ 20; 40; 80; 160 ] in
  (* choice: 2^(k-1) models, output-bound *)
  let choice_ks = if smoke then [ 6; 8 ] else [ 6; 10; 12; 14 ] in
  let choice_naive_cap = if smoke then 8 else 14 in
  (* pinned: one model; the reference is 2^k, the pruned search ~linear.
     k = 18 is the largest size the reference finishes within the full
     bench budget; the production solver continues far past its
     historical cap of 24 choice atoms. *)
  let pinned_ks = if smoke then [ 8; 12; 28 ] else [ 8; 12; 16; 18; 24; 28; 32 ] in
  let pinned_naive_cap = if smoke then 12 else 18 in
  let entries =
    List.map
      (fun n ->
        run_workload ~reps ~naive_cap:max_int "chain" n
          (Cpsrisk.Cascade.asp_chain_program n))
      chain_ns
    @ List.map
        (fun k ->
          run_workload ~reps ~naive_cap:choice_naive_cap "choice" k
            (Cpsrisk.Cascade.asp_choice_program k))
        choice_ks
    @ List.map
        (fun k ->
          run_workload ~reps ~naive_cap:pinned_naive_cap "pinned" k
            (pinned_program k))
        pinned_ks
  in
  emit_json !out (if smoke then "smoke" else "full") entries;
  Printf.eprintf "wrote %s\n" !out
