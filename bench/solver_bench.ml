(* Solver scaling sweep: the production solver (Asp.Solver — cheap
   propagation tier + CDNL with preprocessing, conflict-driven nogood
   learning, backjumping, unfounded-set checks) against the retained
   pruned DFS (Asp.Dfs, the previous production path) and the exhaustive
   reference (Asp.Naive), on five workload shapes:

   - chain n:   deterministic transitive closure over an n-node chain; no
                choices, measures pure propagation (cheap tier).
   - choice k:  k free switches with one pinned atom, 2^(k-1) stable
                models; output-bound enumeration (cheap tier).
   - pinned k:  k choice atoms each pinned by a constraint, exactly one
                stable model; past k = 64 the DFS rejects (its guess cap)
                while the solver propagates to the single model.
   - loop k:    k non-tight positive cycles, each powered by a choice
                atom that a constraint forces on; one stable model. The
                DFS walks 2^k choice branches, the CDNL tier learns
                each forced atom from one unfounded-set conflict.
   - pigeon h:  h+1 pigeons into h holes, unsatisfiable; conflict
                learning prunes the symmetric search space.

   Every row records throughput (models/s, conflicts/s), the tier that
   answered, and the preprocessing counters; skipped baselines carry an
   explicit marker ("timeout" above the budget, "unsupported" when the
   oracle rejects) instead of a bare null.

   Small chain/choice/pinned rows are additionally held to a
   never-slower guard against the retained DFS (mirroring
   analysis_bench): where the DFS baseline is long enough to time
   reliably, the production solver must not be slower than
   [tolerance] x the DFS, or the bench exits 2. `dune build
   @bench-smoke` (part of `dune runtest`) enforces this in CI.

   A separate section measures guiding-path parallel enumeration
   (Engine.Par) with the learned-nogood exchange on and off. On a
   single-core host the measured walls cannot speed up, so each fan-out
   reports its critical path (longest branch wall) and
   est_parallel_s = max(critical_s, sum_s / jobs) — the ideal makespan
   on [jobs] workers — with speedup_vs_seq measured against the
   sequential wall. Paths run one at a time here, so the exchange feeds
   each branch everything earlier branches published; a multi-core host
   interleaves publications instead, changing the work but (by the
   locality discipline on path-local nogoods) never the answer.

   Emits machine-readable JSON (committed as BENCH_solver.json at the
   repo root for the full sweep; the smoke subset runs in seconds). *)

let time ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let pinned_program k =
  let buf = Buffer.create 256 in
  let atoms = List.init k (Printf.sprintf "x%d") in
  Buffer.add_string buf
    (Printf.sprintf "{ %s }.\n" (String.concat " ; " atoms));
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf ":- not %s.\n" a))
    atoms;
  Asp.Parser.parse_program (Buffer.contents buf)

let loop_program k =
  let buf = Buffer.create 256 in
  let cs = List.init k (Printf.sprintf "c%d") in
  Buffer.add_string buf
    (Printf.sprintf "{ %s }.\n" (String.concat " ; " cs));
  for i = 0 to k - 1 do
    Buffer.add_string buf
      (Printf.sprintf "p%d :- q%d. q%d :- p%d. p%d :- c%d.\n:- not p%d.\n" i
         i i i i i i)
  done;
  Asp.Parser.parse_program (Buffer.contents buf)

let pigeon_program holes =
  let pigeons = holes + 1 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pigeon(1..%d).\n" pigeons);
  Buffer.add_string buf (Printf.sprintf "hole(1..%d).\n" holes);
  Buffer.add_string buf "{ at(P,H) : hole(H) } :- pigeon(P).\n";
  Buffer.add_string buf "placed(P) :- at(P,H).\n";
  Buffer.add_string buf ":- pigeon(P), not placed(P).\n";
  Buffer.add_string buf ":- at(P,H), at(Q,H), P < Q.\n";
  Asp.Parser.parse_program (Buffer.contents buf)

(* The standard direct pigeonhole encoding (pairwise exclusion
   constraints, no auxiliary placement predicate) for the parallel
   ladder: its conflict clauses range over the at/2 atoms alone, so the
   assumption-free share filter lets most of each branch's refutation
   travel to the others *)
let pigeon_direct_program holes =
  let n = holes and pigeons = holes + 1 in
  let buf = Buffer.create 256 in
  for p = 1 to pigeons do
    Buffer.add_string buf
      (Printf.sprintf "{ %s }.\n"
         (String.concat " ; "
            (List.init n (fun h -> Printf.sprintf "at(%d,%d)" p (h + 1)))))
  done;
  for p = 1 to pigeons do
    for h1 = 1 to n do
      for h2 = h1 + 1 to n do
        Buffer.add_string buf
          (Printf.sprintf ":- at(%d,%d), at(%d,%d).\n" p h1 p h2)
      done
    done
  done;
  for h = 1 to n do
    for p1 = 1 to pigeons do
      for p2 = p1 + 1 to pigeons do
        Buffer.add_string buf
          (Printf.sprintf ":- at(%d,%d), at(%d,%d).\n" p1 h p2 h)
      done
    done
  done;
  for p = 1 to pigeons do
    Buffer.add_string buf
      (Printf.sprintf ":- %s.\n"
         (String.concat ", "
            (List.init n (fun h -> Printf.sprintf "not at(%d,%d)" p (h + 1)))))
  done;
  Asp.Parser.parse_program (Buffer.contents buf)

(* a baseline column: the oracle ran, or was skipped for a stated reason *)
type baseline = Ran of float | Skipped of string

(* noise tolerance for the never-slower guard; only enforced on rows
   whose DFS baseline takes long enough to time reliably *)
let tolerance = 1.25
let min_reliable_s = 0.010
let guarded = [ "chain"; "choice"; "pinned" ]

type entry = {
  workload : string;
  param : int;
  atoms : int;
  models : int;
  cdnl_s : float;
  dfs : baseline;
  naive : baseline;
  stats : Asp.Solver.Stats.t;
}

let run_workload ~reps ~dfs_cap ~naive_cap name param program =
  let g = Asp.Grounder.ground program in
  let (models, stats), cdnl_s =
    time ~reps (fun () -> Asp.Solver.solve_with_stats g)
  in
  let check_count what n =
    if n <> List.length models then begin
      Printf.eprintf "cdnl/%s disagree on %s %d: %d vs %d models\n" what name
        param (List.length models) n;
      exit 2
    end
  in
  let dfs =
    if param <= dfs_cap then begin
      match time ~reps (fun () -> Asp.Dfs.solve g) with
      | dfs_models, dt ->
          (* the sweep doubles as a coarse differential check *)
          check_count "dfs" (List.length dfs_models);
          Ran dt
      | exception Asp.Dfs.Unsupported _ -> Skipped "unsupported"
    end
    else Skipped "timeout"
  in
  let naive =
    if param <= naive_cap then begin
      match time ~reps (fun () -> Asp.Naive.solve ~max_guess:64 g) with
      | naive_models, dt ->
          check_count "naive" (List.length naive_models);
          Ran dt
      | exception Asp.Naive.Unsupported _ -> Skipped "unsupported"
    end
    else Skipped "timeout"
  in
  (* never-slower guard: on the shapes the cheap tier exists for, the
     production solver must not lose to the baseline it replaced *)
  (match dfs with
  | Ran t
    when List.mem name guarded && t >= min_reliable_s
         && cdnl_s > t *. tolerance ->
      Printf.eprintf "solver slower than dfs on %s %d: %.4fs vs %.4fs\n" name
        param cdnl_s t;
      exit 2
  | _ -> ());
  let pp_col label = function
    | Ran t -> Printf.sprintf ", %s %8.4fs (%.1fx)" label t (t /. cdnl_s)
    | Skipped why -> Printf.sprintf ", %s skipped (%s)" label why
  in
  Printf.eprintf "  %s %3d [%s]: cdnl %8.4fs%s%s, %d models\n%!" name param
    (if stats.Asp.Solver.Stats.cheap then "cheap" else "cdnl")
    cdnl_s (pp_col "dfs" dfs) (pp_col "naive" naive) (List.length models);
  {
    workload = name;
    param;
    atoms = Asp.Ground.atom_count g;
    models = List.length models;
    cdnl_s;
    dfs;
    naive;
    stats;
  }

type par_entry = {
  p_workload : string;
  p_param : int;
  jobs : int;
  share : bool;
  paths : int;
  par_wall_s : float;
  critical_s : float;
  sum_s : float;
  est_parallel_s : float;  (* ideal makespan: max(critical, sum / jobs) *)
  speedup_vs_seq : float;
  shared_out : int;
  shared_in : int;
}

let run_par ~reps ~seq ~seq_wall name param program jobs share =
  let g = Asp.Grounder.ground program in
  let r, wall =
    time ~reps (fun () -> Engine.Par.enumerate ~jobs ~share g)
  in
  let par_models = r.Engine.Par.models in
  if
    List.length par_models <> List.length seq
    || not (List.for_all2 Asp.Model.equal par_models seq)
  then begin
    Printf.eprintf "par %s %d jobs=%d share=%b diverged from sequential\n"
      name param jobs share;
    exit 2
  end;
  let sum = Array.fold_left ( +. ) 0.0 r.Engine.Par.path_walls in
  let critical = Array.fold_left max 0.0 r.Engine.Par.path_walls in
  let est = Float.max critical (sum /. float_of_int jobs) in
  let speedup = if est > 0.0 then seq_wall /. est else 1.0 in
  let s = r.Engine.Par.stats in
  Printf.eprintf
    "  par %s %d jobs=%d share=%b: %d paths, critical %8.4fs, est %8.4fs \
     (%.2fx vs seq), shared %d/%d\n\
     %!"
    name param jobs share r.Engine.Par.paths critical est speedup
    s.Asp.Solver.Stats.shared_out s.Asp.Solver.Stats.shared_in;
  {
    p_workload = name;
    p_param = param;
    jobs;
    share;
    paths = r.Engine.Par.paths;
    par_wall_s = wall;
    critical_s = critical;
    sum_s = sum;
    est_parallel_s = est;
    speedup_vs_seq = speedup;
    shared_out = s.Asp.Solver.Stats.shared_out;
    shared_in = s.Asp.Solver.Stats.shared_in;
  }

(* one workload's parallel ladder: sequential baseline, then every
   jobs / share combination measured against it *)
let par_ladder ~reps name param program combos =
  let g = Asp.Grounder.ground program in
  let (seq, seq_stats), seq_wall =
    time ~reps (fun () -> Asp.Solver.solve_with_stats g)
  in
  ignore seq_stats;
  List.map
    (fun (jobs, share) ->
      if jobs <= 1 then begin
        Printf.eprintf "  par %s %d jobs=1: seq wall %8.4fs\n%!" name param
          seq_wall;
        {
          p_workload = name;
          p_param = param;
          jobs = 1;
          share = false;
          paths = 1;
          par_wall_s = seq_wall;
          critical_s = seq_wall;
          sum_s = seq_wall;
          est_parallel_s = seq_wall;
          speedup_vs_seq = 1.0;
          shared_out = 0;
          shared_in = 0;
        }
      end
      else run_par ~reps ~seq ~seq_wall name param program jobs share)
    combos

let emit_json out mode entries par_entries =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"asp-solver-scaling\",\n";
  p "  \"mode\": %S,\n" mode;
  p
    "  \"solver\": \"Asp.Solver (cheap propagation tier + CDNL: \
     preprocessed completion nogoods, 1-UIP learning, unfounded-set \
     checks)\",\n";
  p
    "  \"baselines\": [\"Asp.Dfs (retained pruned DFS)\", \"Asp.Naive \
     (exhaustive subset enumeration)\"],\n";
  p "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  p
    "  \"never_slower\": {\"workloads\": [%s], \"tolerance\": %.2f, \
     \"min_reliable_s\": %.3f},\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") guarded))
    tolerance min_reliable_s;
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      let s = e.stats in
      let tm = function
        | Ran t -> Printf.sprintf "%.6f" t
        | Skipped _ -> "null"
      in
      let speedup = function
        | Ran t -> Printf.sprintf "%.2f" (t /. e.cdnl_s)
        | Skipped _ -> "null"
      in
      let skip = function
        | Ran _ -> "null"
        | Skipped why -> Printf.sprintf "%S" why
      in
      let per_s n = float_of_int n /. Float.max e.cdnl_s 1e-9 in
      p
        "    {\"workload\": %S, \"param\": %d, \"ground_atoms\": %d, \
         \"models\": %d,\n\
        \     \"cdnl_s\": %.6f, \"models_per_s\": %.1f, \
         \"conflicts_per_s\": %.1f, \"tier\": %S,\n\
        \     \"dfs_s\": %s, \"dfs_speedup\": %s, \"dfs_skipped\": %s,\n\
        \     \"naive_s\": %s, \"naive_speedup\": %s, \"naive_skipped\": \
         %s,\n\
        \     \"stats\": {\"guesses\": %d, \"firings\": %d, \"conflicts\": \
         %d, \"learned\": %d, \"restarts\": %d, \"model_blocks\": %d, \
         \"backjumped\": %d, \"unfounded_checks\": %d, \"unfounded_sets\": \
         %d, \"pre_units\": %d, \"pre_subsumed\": %d, \"pre_equivs\": %d, \
         \"pre_pure\": %d}}%s\n"
        e.workload e.param e.atoms e.models e.cdnl_s (per_s e.models)
        (per_s s.Asp.Solver.Stats.conflicts)
        (if s.Asp.Solver.Stats.cheap then "cheap" else "cdnl")
        (tm e.dfs) (speedup e.dfs) (skip e.dfs) (tm e.naive) (speedup e.naive)
        (skip e.naive) s.Asp.Solver.Stats.guesses s.Asp.Solver.Stats.firings
        s.Asp.Solver.Stats.conflicts s.Asp.Solver.Stats.learned
        s.Asp.Solver.Stats.restarts s.Asp.Solver.Stats.model_blocks
        s.Asp.Solver.Stats.backjumped s.Asp.Solver.Stats.unfounded_checks
        s.Asp.Solver.Stats.unfounded_sets s.Asp.Solver.Stats.pre_units
        s.Asp.Solver.Stats.pre_subsumed s.Asp.Solver.Stats.pre_equivs
        s.Asp.Solver.Stats.pre_pure
        (if i = List.length entries - 1 then "" else ",");
      ())
    entries;
  p "  ],\n";
  p "  \"parallel\": {\n";
  p
    "    \"note\": \"guiding-path enumeration with learned-nogood \
     exchange; on a single-core host the measured wall cannot improve, \
     so est_parallel_s = max(critical_s, sum_s / jobs) is the ideal \
     makespan on jobs workers and speedup_vs_seq compares it to the \
     sequential wall\",\n";
  p "    \"entries\": [\n";
  List.iteri
    (fun i e ->
      p
        "      {\"workload\": %S, \"param\": %d, \"jobs\": %d, \"share\": \
         %b, \"paths\": %d,\n\
        \       \"wall_s\": %.6f, \"critical_s\": %.6f, \"sum_s\": %.6f, \
         \"est_parallel_s\": %.6f,\n\
        \       \"speedup_vs_seq\": %.2f, \"ideal_speedup\": %.2f, \
         \"shared_out\": %d, \"shared_in\": %d}%s\n"
        e.p_workload e.p_param e.jobs e.share e.paths e.par_wall_s
        e.critical_s e.sum_s e.est_parallel_s e.speedup_vs_seq
        (if e.critical_s > 0.0 then e.sum_s /. e.critical_s else 1.0)
        e.shared_out e.shared_in
        (if i = List.length par_entries - 1 then "" else ","))
    par_entries;
  p "    ]\n  }\n}\n";
  close_out oc

let run ~smoke ~out =
  let reps = if smoke then 1 else 3 in
  (* chain: pure propagation, no guessing *)
  let chain_ns = if smoke then [ 20; 40 ] else [ 20; 40; 80; 160 ] in
  (* choice: 2^(k-1) models, output-bound enumeration *)
  let choice_ks = if smoke then [ 6; 8 ] else [ 6; 10; 12; 14 ] in
  let choice_naive_cap = if smoke then 8 else 14 in
  (* pinned: one model; the reference is 2^k, the DFS closes wrong
     branches immediately but rejects past its 64-atom cap, the
     production solver propagates to the model at any size *)
  let pinned_ks =
    if smoke then [ 8; 28; 96 ]
    else [ 8; 12; 16; 18; 24; 28; 32; 64; 96; 128 ]
  in
  let pinned_naive_cap = if smoke then 12 else 18 in
  (* loop: non-tight cycles; the DFS walks 2^k branches, the reference
     2^2k (the negated loop atoms join its guess space) *)
  let loop_ks = if smoke then [ 8; 12 ] else [ 8; 12; 14; 16; 32; 64 ] in
  let loop_dfs_cap = 16 in
  let loop_naive_cap = if smoke then 6 else 8 in
  (* pigeon: h+1 pigeons, h holes, unsatisfiable *)
  let pigeon_hs = if smoke then [ 4 ] else [ 4; 5; 6; 7 ] in
  let pigeon_dfs_cap = if smoke then 4 else 6 in
  (* the reference walks 2^(pigeons*holes) candidates: ~25s at h = 4,
     so the smoke run skips it *)
  let pigeon_naive_cap = if smoke then 3 else 4 in
  let entries =
    List.map
      (fun n ->
        run_workload ~reps ~dfs_cap:max_int ~naive_cap:max_int "chain" n
          (Cpsrisk.Cascade.asp_chain_program n))
      chain_ns
    @ List.map
        (fun k ->
          run_workload ~reps ~dfs_cap:max_int ~naive_cap:choice_naive_cap
            "choice" k
            (Cpsrisk.Cascade.asp_choice_program k))
        choice_ks
    @ List.map
        (fun k ->
          run_workload ~reps ~dfs_cap:max_int ~naive_cap:pinned_naive_cap
            "pinned" k (pinned_program k))
        pinned_ks
    @ List.map
        (fun k ->
          run_workload ~reps ~dfs_cap:loop_dfs_cap ~naive_cap:loop_naive_cap
            "loop" k (loop_program k))
        loop_ks
    @ List.map
        (fun h ->
          run_workload ~reps ~dfs_cap:pigeon_dfs_cap
            ~naive_cap:pigeon_naive_cap "pigeon" h (pigeon_program h))
        pigeon_hs
  in
  (* parallel enumeration: the largest smoke-safe choice workload, and
     the pigeonhole refutation where the exchange pays (shared conflict
     clauses prune the symmetric branches other paths would re-learn) *)
  let par_choice_k = if smoke then 8 else 12 in
  let par_pigeon_h = if smoke then 5 else 7 in
  let ladder = [ (1, false); (2, true); (2, false); (4, true); (4, false) ] in
  let par_entries =
    par_ladder ~reps "choice" par_choice_k
      (Cpsrisk.Cascade.asp_choice_program par_choice_k)
      ladder
    @ par_ladder ~reps "pigeon" par_pigeon_h
        (pigeon_direct_program par_pigeon_h)
        ladder
  in
  emit_json out (if smoke then "smoke" else "full") entries par_entries;
  Printf.eprintf "wrote %s\n" out;
  List.map
    (fun e ->
      Registry.row ~ground_atoms:e.atoms ~models:e.models
        ~note:
          (Printf.sprintf "%s%s"
             (if e.stats.Asp.Solver.Stats.cheap then "cheap tier" else "cdnl")
             (match e.dfs with
             | Ran t -> Printf.sprintf ", %.1fx dfs" (t /. e.cdnl_s)
             | Skipped _ -> ""))
        ~param:(string_of_int e.param) e.workload e.cdnl_s)
    entries
  @ List.map
      (fun e ->
        Registry.row
          ~note:
            (Printf.sprintf "%d paths, est %.2fx seq, shared %d/%d" e.paths
               e.speedup_vs_seq e.shared_in e.shared_out)
          ~param:
            (Printf.sprintf "%d j%d %s" e.p_param e.jobs
               (if e.share then "share" else "noshare"))
          ("par-" ^ e.p_workload) e.est_parallel_s)
      par_entries

let bench =
  {
    Registry.name = "solver";
    descr = "CDNL solver vs DFS and naive references; parallel ladder";
    default_out = "BENCH_solver.json";
    run;
  }
