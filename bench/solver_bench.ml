(* Solver scaling sweep: the production CDNL solver (Asp.Solver —
   conflict-driven nogood learning, backjumping, unfounded-set checks)
   against the retained pruned DFS (Asp.Dfs, the previous production
   path) and the exhaustive reference (Asp.Naive), on five workload
   shapes:

   - chain n:   deterministic transitive closure over an n-node chain; no
                choices, measures pure propagation.
   - choice k:  k free switches with one pinned atom, 2^(k-1) stable
                models; output-bound enumeration.
   - pinned k:  k choice atoms each pinned by a constraint, exactly one
                stable model; past k = 64 the DFS rejects (its guess cap)
                while the CDNL solver propagates to the single model.
   - loop k:    k non-tight positive cycles, each powered by a choice
                atom that a constraint forces on; one stable model. The
                DFS walks 2^k choice branches, the CDNL solver learns
                each forced atom from one unfounded-set conflict.
   - pigeon h:  h+1 pigeons into h holes, unsatisfiable; conflict
                learning prunes the symmetric search space.

   A separate section measures guiding-path parallel enumeration
   (Engine.Par) at 1/2/4 requested domains. On a single-core host the
   measured walls cannot speed up, so the sweep also reports each
   fan-out's critical path (max branch wall) and the ideal speedup
   sum/critical — the scaling a multi-core host would realize.

   Emits machine-readable JSON (committed as BENCH_solver.json at the
   repo root for the full sweep; `dune build @bench-smoke` runs a
   seconds-scale subset as part of the test tree). *)

let time ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let pinned_program k =
  let buf = Buffer.create 256 in
  let atoms = List.init k (Printf.sprintf "x%d") in
  Buffer.add_string buf
    (Printf.sprintf "{ %s }.\n" (String.concat " ; " atoms));
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf ":- not %s.\n" a))
    atoms;
  Asp.Parser.parse_program (Buffer.contents buf)

let loop_program k =
  let buf = Buffer.create 256 in
  let cs = List.init k (Printf.sprintf "c%d") in
  Buffer.add_string buf
    (Printf.sprintf "{ %s }.\n" (String.concat " ; " cs));
  for i = 0 to k - 1 do
    Buffer.add_string buf
      (Printf.sprintf "p%d :- q%d. q%d :- p%d. p%d :- c%d.\n:- not p%d.\n" i
         i i i i i i)
  done;
  Asp.Parser.parse_program (Buffer.contents buf)

let pigeon_program holes =
  let pigeons = holes + 1 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pigeon(1..%d).\n" pigeons);
  Buffer.add_string buf (Printf.sprintf "hole(1..%d).\n" holes);
  Buffer.add_string buf "{ at(P,H) : hole(H) } :- pigeon(P).\n";
  Buffer.add_string buf "placed(P) :- at(P,H).\n";
  Buffer.add_string buf ":- pigeon(P), not placed(P).\n";
  Buffer.add_string buf ":- at(P,H), at(Q,H), P < Q.\n";
  Asp.Parser.parse_program (Buffer.contents buf)

type entry = {
  workload : string;
  param : int;
  atoms : int;
  models : int;
  cdnl_s : float;
  dfs_s : float option; (* None above the retained DFS's budget or cap *)
  naive_s : float option; (* None above the reference's budget *)
  stats : Asp.Solver.Stats.t;
}

let run_workload ~reps ~dfs_cap ~naive_cap name param program =
  let g = Asp.Grounder.ground program in
  let (models, stats), cdnl_s =
    time ~reps (fun () -> Asp.Solver.solve_with_stats g)
  in
  let check_count what n =
    if n <> List.length models then begin
      Printf.eprintf "cdnl/%s disagree on %s %d: %d vs %d models\n" what name
        param (List.length models) n;
      exit 2
    end
  in
  let dfs_s =
    if param <= dfs_cap then begin
      match time ~reps (fun () -> Asp.Dfs.solve g) with
      | dfs_models, dt ->
          (* the sweep doubles as a coarse differential check *)
          check_count "dfs" (List.length dfs_models);
          Some dt
      | exception Asp.Dfs.Unsupported _ -> None
    end
    else None
  in
  let naive_s =
    if param <= naive_cap then begin
      match time ~reps (fun () -> Asp.Naive.solve ~max_guess:64 g) with
      | naive_models, dt ->
          check_count "naive" (List.length naive_models);
          Some dt
      | exception Asp.Naive.Unsupported _ -> None
    end
    else None
  in
  let pp_col label = function
    | Some t -> Printf.sprintf ", %s %8.4fs (%.1fx)" label t (t /. cdnl_s)
    | None -> Printf.sprintf ", %s skipped" label
  in
  Printf.eprintf "  %s %3d: cdnl %8.4fs%s%s, %d models\n%!" name param cdnl_s
    (pp_col "dfs" dfs_s) (pp_col "naive" naive_s) (List.length models);
  {
    workload = name;
    param;
    atoms = Asp.Ground.atom_count g;
    models = List.length models;
    cdnl_s;
    dfs_s;
    naive_s;
    stats;
  }

type par_entry = {
  jobs : int;
  paths : int;
  par_wall_s : float;
  critical_s : float;
  sum_s : float;
}

let run_par ~reps program jobs =
  let g = Asp.Grounder.ground program in
  let seq_models = Asp.Solver.solve g in
  let r, wall =
    time ~reps (fun () -> Engine.Par.enumerate ~oversubscribe:true ~jobs g)
  in
  if List.length r.Engine.Par.models <> List.length seq_models then begin
    Printf.eprintf "par %d diverged: %d vs %d models\n" jobs
      (List.length r.Engine.Par.models)
      (List.length seq_models);
    exit 2
  end;
  let sum = Array.fold_left ( +. ) 0.0 r.Engine.Par.path_walls in
  let critical = Array.fold_left max 0.0 r.Engine.Par.path_walls in
  Printf.eprintf
    "  par %d: wall %8.4fs over %d paths, critical %8.4fs, ideal %.2fx\n%!"
    jobs wall r.Engine.Par.paths critical
    (if critical > 0.0 then sum /. critical else 1.0);
  {
    jobs;
    paths = r.Engine.Par.paths;
    par_wall_s = wall;
    critical_s = critical;
    sum_s = sum;
  }

let emit_json out mode entries par_entries =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"asp-solver-scaling\",\n";
  p "  \"mode\": %S,\n" mode;
  p
    "  \"solver\": \"Asp.Solver (CDNL: completion nogoods, 1-UIP learning, \
     unfounded-set checks)\",\n";
  p
    "  \"baselines\": [\"Asp.Dfs (retained pruned DFS)\", \"Asp.Naive \
     (exhaustive subset enumeration)\"],\n";
  p "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      let s = e.stats in
      let opt = function
        | Some t -> Printf.sprintf "%.6f" t
        | None -> "null"
      in
      let speedup = function
        | Some t -> Printf.sprintf "%.2f" (t /. e.cdnl_s)
        | None -> "null"
      in
      p
        "    {\"workload\": %S, \"param\": %d, \"ground_atoms\": %d, \
         \"models\": %d,\n\
        \     \"cdnl_s\": %.6f, \"dfs_s\": %s, \"dfs_speedup\": %s, \
         \"naive_s\": %s, \"naive_speedup\": %s,\n\
        \     \"stats\": {\"guesses\": %d, \"firings\": %d, \"conflicts\": \
         %d, \"learned\": %d, \"restarts\": %d, \"backjumped\": %d, \
         \"unfounded_checks\": %d, \"unfounded_sets\": %d}}%s\n"
        e.workload e.param e.atoms e.models e.cdnl_s (opt e.dfs_s)
        (speedup e.dfs_s) (opt e.naive_s) (speedup e.naive_s)
        s.Asp.Solver.Stats.guesses s.Asp.Solver.Stats.firings
        s.Asp.Solver.Stats.conflicts s.Asp.Solver.Stats.learned
        s.Asp.Solver.Stats.restarts s.Asp.Solver.Stats.backjumped
        s.Asp.Solver.Stats.unfounded_checks s.Asp.Solver.Stats.unfounded_sets
        (if i = List.length entries - 1 then "" else ",");
      ())
    entries;
  p "  ],\n";
  p "  \"parallel\": {\n";
  p
    "    \"note\": \"guiding-path enumeration; on a single-core host the \
     measured wall cannot improve, so critical_s (longest branch) and \
     ideal_speedup = sum_s / critical_s report the scaling a multi-core \
     host would realize\",\n";
  p "    \"entries\": [\n";
  List.iteri
    (fun i e ->
      p
        "      {\"jobs\": %d, \"paths\": %d, \"wall_s\": %.6f, \
         \"critical_s\": %.6f, \"sum_s\": %.6f, \"ideal_speedup\": %.2f}%s\n"
        e.jobs e.paths e.par_wall_s e.critical_s e.sum_s
        (if e.critical_s > 0.0 then e.sum_s /. e.critical_s else 1.0)
        (if i = List.length par_entries - 1 then "" else ","))
    par_entries;
  p "    ]\n  }\n}\n";
  close_out oc

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out = ref "BENCH_solver.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1))
    Sys.argv;
  let reps = if smoke then 1 else 3 in
  (* chain: pure propagation, no guessing *)
  let chain_ns = if smoke then [ 20; 40 ] else [ 20; 40; 80; 160 ] in
  (* choice: 2^(k-1) models, output-bound enumeration *)
  let choice_ks = if smoke then [ 6; 8 ] else [ 6; 10; 12; 14 ] in
  let choice_naive_cap = if smoke then 8 else 14 in
  (* pinned: one model; the reference is 2^k, the DFS closes wrong
     branches immediately but rejects past its 64-atom cap, the CDNL
     solver propagates to the model at any size *)
  let pinned_ks =
    if smoke then [ 8; 28; 96 ]
    else [ 8; 12; 16; 18; 24; 28; 32; 64; 96; 128 ]
  in
  let pinned_naive_cap = if smoke then 12 else 18 in
  (* loop: non-tight cycles; the DFS walks 2^k branches, the reference
     2^2k (the negated loop atoms join its guess space) *)
  let loop_ks = if smoke then [ 8; 12 ] else [ 8; 12; 14; 16; 32; 64 ] in
  let loop_dfs_cap = 16 in
  let loop_naive_cap = if smoke then 6 else 8 in
  (* pigeon: h+1 pigeons, h holes, unsatisfiable *)
  let pigeon_hs = if smoke then [ 4 ] else [ 4; 5; 6; 7 ] in
  let pigeon_dfs_cap = if smoke then 4 else 6 in
  (* the reference walks 2^(pigeons*holes) candidates: ~25s at h = 4,
     so the smoke run skips it *)
  let pigeon_naive_cap = if smoke then 3 else 4 in
  let entries =
    List.map
      (fun n ->
        run_workload ~reps ~dfs_cap:max_int ~naive_cap:max_int "chain" n
          (Cpsrisk.Cascade.asp_chain_program n))
      chain_ns
    @ List.map
        (fun k ->
          run_workload ~reps ~dfs_cap:max_int ~naive_cap:choice_naive_cap
            "choice" k
            (Cpsrisk.Cascade.asp_choice_program k))
        choice_ks
    @ List.map
        (fun k ->
          run_workload ~reps ~dfs_cap:max_int ~naive_cap:pinned_naive_cap
            "pinned" k (pinned_program k))
        pinned_ks
    @ List.map
        (fun k ->
          run_workload ~reps ~dfs_cap:loop_dfs_cap ~naive_cap:loop_naive_cap
            "loop" k (loop_program k))
        loop_ks
    @ List.map
        (fun h ->
          run_workload ~reps ~dfs_cap:pigeon_dfs_cap
            ~naive_cap:pigeon_naive_cap "pigeon" h (pigeon_program h))
        pigeon_hs
  in
  (* parallel enumeration over the largest smoke-safe choice workload *)
  let par_k = if smoke then 8 else 12 in
  let par_entries =
    List.map
      (fun jobs ->
        run_par ~reps (Cpsrisk.Cascade.asp_choice_program par_k) jobs)
      [ 1; 2; 4 ]
  in
  emit_json !out (if smoke then "smoke" else "full") entries par_entries;
  Printf.eprintf "wrote %s\n" !out
