(* Incremental CEGAR and the engine-backed mitigation frontier vs their
   retained scratch oracles, on the hierarchical case study
   (Cpsrisk.Hierarchy): a layered-zone refinement schedule and a
   12-action shield catalog over a deterministic propagation plant.

   Sections (every one checked bit-identical to its oracle first):

   - refine:       Cegar.Inc.run (assume mode with nogood carry, and
                   increment mode) vs Cegar.Inc.run_scratch — the
                   accumulated-reground loop the incremental driver
                   replaces. Measured two ways: a single cold pass
                   (where the win is grounding reuse and the hub, kept
                   honest by the never-slower guard), and the iterative
                   workload the incremental engine exists for — the
                   analyst retracts one confirmed hypothesis at a time
                   and re-runs the schedule, with one Engine.Cache
                   shared across passes, while scratch repays every
                   round from nothing. Acceptance: iterative
                   incremental >= 3x scratch.
   - pareto:       Mitigation.Frontier.pareto evaluates every action
                   subset through the cache over the worker pool; the
                   sequential baseline is Optimizer.pareto over the same
                   warm problem with a fresh cache. The container is
                   single-core, so the parallel figure is the estimate
                   the sweep/solver benches use: per-eval walls give
                   sum_s and critical_s, and
                   est_parallel_s = max(critical_s, sum_s / jobs).
                   Acceptance: >= 2x at 4 domains.
   - budget-sweep: Frontier.budget_sweep over an overlapping budget
                   ladder; successive budgets re-request the smaller
                   budgets' subsets, so the shared cache must answer
                   > 50% of evaluations.

   A never-slower guard (tolerance 1.25, exit 2) keeps the incremental
   refine honest against scratch in CI. Emits JSON (committed as
   BENCH_cegar.json at the repo root for the full run; `dune build
   @cegar-smoke` runs a seconds-scale subset as part of the test tree). *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let tolerance = 1.25
let min_reliable_s = 0.010

let labels ds = List.map Engine.Delta.label ds

let outcome_key (o : Cegar.Inc.outcome) =
  ( List.map
      (fun (r : Cegar.Inc.round) ->
        (r.Cegar.Inc.r_level, r.Cegar.Inc.r_label,
         labels r.Cegar.Inc.r_survivors, labels r.Cegar.Inc.r_eliminated))
      o.Cegar.Inc.rounds,
    labels o.Cegar.Inc.confirmed )

type refine_entry = {
  re_name : string;
  re_wall_s : float;
  re_solves : int;
  re_hits : int;
  re_carried : int;
  re_published : int;
  re_fresh_rules : int;
  re_reused_rules : int;
}

let refine_entry name (o : Cegar.Inc.outcome) w =
  let s = o.Cegar.Inc.stats in
  {
    re_name = name;
    re_wall_s = w;
    re_solves = s.Cegar.Inc.s_solves;
    re_hits = s.Cegar.Inc.s_hits;
    re_carried = s.Cegar.Inc.s_carried;
    re_published = s.Cegar.Inc.s_published;
    re_fresh_rules = s.Cegar.Inc.s_ground.Asp.Grounder.Stats.fresh_rules;
    re_reused_rules = s.Cegar.Inc.s_ground.Asp.Grounder.Stats.reused_rules;
  }

let run ~smoke ~out =
  (* --- refine: incremental vs accumulated-reground scratch ------------ *)
  let levels = if smoke then 6 else 10 in
  let entries = if smoke then 9 else 14 in
  (* scratch pays per round: reground the whole accumulated program and
     re-assess every surviving candidate with no cache and no hub *)
  let reps = if smoke then 1 else 3 in
  let best f =
    let r = ref None and w = ref infinity in
    for _ = 1 to reps do
      let r', w' = wall f in
      if w' < !w then begin r := Some r'; w := w' end
    done;
    (Option.get !r, !w)
  in
  (* the iterative workload: pass 0 runs the full hypothesis set, then
     each later pass retracts one more confirmed entry hypothesis and
     re-runs the whole schedule *)
  let passes = if smoke then 4 else 6 in
  let bench_mode name mode =
    let spec = Cpsrisk.Hierarchy.refine_spec ~levels ~entries ~mode () in
    let spec_at j =
      { spec with
        Cegar.Inc.candidates =
          List.filteri (fun i _ -> i >= j) spec.Cegar.Inc.candidates
      }
    in
    (* single cold pass, best of reps *)
    let scratch, scratch_s = best (fun () -> Cegar.Inc.run_scratch spec) in
    let inc, inc_s = best (fun () -> Cegar.Inc.run spec) in
    if outcome_key inc <> outcome_key scratch then begin
      Printf.eprintf "cegar_bench: %s disagrees with scratch\n" name;
      exit 2
    end;
    Printf.eprintf
      "  refine-%-10s: inc %8.4fs, scratch %8.4fs (%.1fx), %d solves / %d \
       hits, carried %d, reused %d instances\n%!"
      name inc_s scratch_s (scratch_s /. inc_s)
      inc.Cegar.Inc.stats.Cegar.Inc.s_solves
      inc.Cegar.Inc.stats.Cegar.Inc.s_hits
      inc.Cegar.Inc.stats.Cegar.Inc.s_carried
      inc.Cegar.Inc.stats.Cegar.Inc.s_ground.Asp.Grounder.Stats.reused_rules;
    (* never-slower guard: the warm path must not lose to the oracle
       even on a single cold pass, where the cache cannot help *)
    if scratch_s >= min_reliable_s && inc_s > scratch_s *. tolerance then begin
      Printf.eprintf
        "cegar_bench: incremental %s %.4fs slower than scratch %.4fs x %.2f\n"
        name inc_s scratch_s tolerance;
      exit 2
    end;
    (* iterative retraction passes: one shared cache for the incremental
       driver; scratch by definition repays everything each pass *)
    let specs = List.init passes spec_at in
    let scratch_outs, scratch_total =
      wall (fun () -> List.map Cegar.Inc.run_scratch specs)
    in
    let cache = Engine.Cache.create () in
    let inc_outs, inc_total =
      wall (fun () -> List.map (fun s -> Cegar.Inc.run ~cache s) specs)
    in
    List.iter2
      (fun a b ->
        if outcome_key a <> outcome_key b then begin
          Printf.eprintf "cegar_bench: %s iterative pass disagrees\n" name;
          exit 2
        end)
      inc_outs scratch_outs;
    let sum f = List.fold_left (fun acc o -> acc + f o.Cegar.Inc.stats) 0 in
    let it_solves = sum (fun s -> s.Cegar.Inc.s_solves) inc_outs in
    let it_hits = sum (fun s -> s.Cegar.Inc.s_hits) inc_outs in
    Printf.eprintf
      "  retract-%-9s: inc %8.4fs, scratch %8.4fs (%.1fx) over %d passes, \
       %d solves / %d hits\n%!"
      name inc_total scratch_total (scratch_total /. inc_total) passes
      it_solves it_hits;
    if scratch_total >= min_reliable_s && inc_total > scratch_total *. tolerance
    then begin
      Printf.eprintf
        "cegar_bench: iterative %s %.4fs slower than scratch %.4fs x %.2f\n"
        name inc_total scratch_total tolerance;
      exit 2
    end;
    ( refine_entry "scratch" scratch scratch_s,
      refine_entry name inc inc_s,
      (scratch_total, inc_total, it_solves, it_hits) )
  in
  let scratch_a, assume_e, assume_it = bench_mode "assume" `Assume in
  let _, increment_e, increment_it = bench_mode "increment" `Increment in
  let iterative_speedup =
    let s, i, _, _ = assume_it in
    let s', i', _, _ = increment_it in
    Float.max (s /. i) (s' /. i')
  in

  (* --- pareto: pooled frontier vs sequential warm baseline ------------- *)
  let jobs = 4 in
  let f_seq = Cpsrisk.Hierarchy.frontier () in
  let seq_front, seq_s =
    wall (fun () -> Mitigation.Optimizer.pareto (Mitigation.Frontier.problem f_seq))
  in
  let f_par = Cpsrisk.Hierarchy.frontier () in
  let (par_front, par_report), _ =
    wall (fun () -> Mitigation.Frontier.pareto ~jobs f_par)
  in
  if par_front <> seq_front then begin
    Printf.eprintf "cegar_bench: parallel pareto front differs\n";
    exit 2
  end;
  let est_parallel_s =
    Float.max par_report.Mitigation.Frontier.r_critical_s
      (par_report.Mitigation.Frontier.r_sum_s /. float_of_int jobs)
  in
  Printf.eprintf
    "  pareto          : seq %8.4fs, est %d domains %8.4fs (%.1fx), %d \
     evals, front %d points\n%!"
    seq_s jobs est_parallel_s (seq_s /. est_parallel_s)
    par_report.Mitigation.Frontier.r_evals
    (List.length par_front);

  (* --- budget sweep: overlapping ladder through one shared cache ------- *)
  let budgets = [ 15; 18; 21; 24 ] in
  let f_bud = Cpsrisk.Hierarchy.frontier () in
  let (curve, bud_report), bud_s =
    wall (fun () -> Mitigation.Frontier.budget_sweep ~jobs f_bud ~budgets)
  in
  (* full mode checks against the cold-grounding scratch oracle; smoke
     keeps its seconds budget with the sequential warm search (the
     scratch differential is pinned by the test suite either way) *)
  let oracle_curve =
    if smoke then
      Mitigation.Optimizer.budget_sweep
        (Mitigation.Frontier.problem (Cpsrisk.Hierarchy.frontier ()))
        ~budgets
    else
      Mitigation.Optimizer.budget_sweep
        (Mitigation.Frontier.scratch_problem f_bud)
        ~budgets
  in
  if curve <> oracle_curve then begin
    Printf.eprintf "cegar_bench: budget curve differs from scratch oracle\n";
    exit 2
  end;
  let hit_rate =
    float_of_int bud_report.Mitigation.Frontier.r_hits
    /. float_of_int bud_report.Mitigation.Frontier.r_evals
  in
  Printf.eprintf
    "  budget-sweep    : %8.4fs, %d evals, %d hits (%.0f%% deduped)\n%!"
    bud_s bud_report.Mitigation.Frontier.r_evals
    bud_report.Mitigation.Frontier.r_hits (hit_rate *. 100.0);
  if hit_rate <= 0.5 then begin
    Printf.eprintf "cegar_bench: budget-sweep hit rate %.2f <= 0.5\n" hit_rate;
    exit 2
  end;

  (* --- emit ------------------------------------------------------------ *)
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"incremental-cegar-frontier\",\n";
  p "  \"mode\": %S,\n" (if smoke then "smoke" else "full");
  p "  \"workload\": \"hierarchical case study: layered-zone refinement + \
     12-action shield catalog\",\n";
  p "  \"refine\": {\n";
  p "    \"levels\": %d, \"entries\": %d,\n" levels entries;
  p "    \"entries_list\": [\n";
  let pe i (e : refine_entry) last =
    p
      "      {\"name\": %S, \"wall_s\": %.6f, \"speedup_vs_scratch\": \
       %.2f, \"solves\": %d, \"cache_hits\": %d,\n\
      \       \"nogoods_carried\": %d, \"nogoods_published\": %d, \
       \"ground_fresh_rules\": %d, \"ground_reused_rules\": %d}%s\n"
      e.re_name e.re_wall_s
      (scratch_a.re_wall_s /. e.re_wall_s)
      e.re_solves e.re_hits e.re_carried e.re_published e.re_fresh_rules
      e.re_reused_rules
      (if last then "" else ",");
    ignore i
  in
  pe 0 scratch_a false;
  pe 1 assume_e false;
  pe 2 increment_e true;
  p "    ],\n";
  p "    \"iterative\": {\n";
  p "      \"workload\": \"retract one confirmed hypothesis per pass and \
     re-run the schedule; one Engine.Cache shared across incremental \
     passes\",\n";
  p "      \"passes\": %d,\n" passes;
  let pit name (s, i, solves, hits) last =
    p
      "      %S: {\"scratch_total_s\": %.6f, \"inc_total_s\": %.6f, \
       \"speedup\": %.2f, \"solves\": %d, \"cache_hits\": %d}%s\n"
      name s i (s /. i) solves hits
      (if last then "" else ",")
  in
  pit "assume" assume_it false;
  pit "increment" increment_it true;
  p "    },\n";
  p "    \"incremental_speedup\": %.2f\n" iterative_speedup;
  p "  },\n";
  p "  \"pareto\": {\n";
  p "    \"actions\": %d, \"subsets\": %d, \"jobs\": %d,\n"
    (List.length (Mitigation.Frontier.actions f_par))
    par_report.Mitigation.Frontier.r_evals jobs;
  p "    \"seq_wall_s\": %.6f, \"sum_s\": %.6f, \"critical_s\": %.6f,\n"
    seq_s par_report.Mitigation.Frontier.r_sum_s
    par_report.Mitigation.Frontier.r_critical_s;
  p "    \"est_parallel_s\": %.6f, \"est_speedup\": %.2f,\n" est_parallel_s
    (seq_s /. est_parallel_s);
  p "    \"front_points\": %d\n" (List.length par_front);
  p "  },\n";
  p "  \"budget_sweep\": {\n";
  p "    \"budgets\": [%s],\n"
    (String.concat ", " (List.map string_of_int budgets));
  p "    \"wall_s\": %.6f, \"evals\": %d, \"hits\": %d, \"fresh\": %d,\n"
    bud_s bud_report.Mitigation.Frontier.r_evals
    bud_report.Mitigation.Frontier.r_hits
    bud_report.Mitigation.Frontier.r_fresh;
  p "    \"hit_rate\": %.3f\n" hit_rate;
  p "  },\n";
  p "  \"never_slower\": {\"tolerance\": %.2f, \"min_reliable_s\": %.3f},\n"
    tolerance min_reliable_s;
  p "  \"oracle\": \"all sections bit-identical to the retained scratch \
     paths\"\n";
  p "}\n";
  close_out oc;
  Printf.eprintf "wrote %s\n" out;
  let refine_row (e : refine_entry) =
    Registry.row
      ~note:
        (Printf.sprintf "%.1fx scratch, %d solves / %d hits, reused %d"
           (scratch_a.re_wall_s /. e.re_wall_s)
           e.re_solves e.re_hits e.re_reused_rules)
      ~param:(Printf.sprintf "%dx%d" levels entries)
      ("refine-" ^ e.re_name) e.re_wall_s
  in
  let retract_row name (s, i, solves, hits) =
    Registry.row
      ~note:
        (Printf.sprintf "%.1fx scratch over %d passes, %d solves / %d hits"
           (s /. i) passes solves hits)
      ~param:(string_of_int passes) ("retract-" ^ name) i
  in
  [
    refine_row scratch_a;
    refine_row assume_e;
    refine_row increment_e;
    retract_row "assume" assume_it;
    retract_row "increment" increment_it;
    Registry.row
      ~note:
        (Printf.sprintf "est %d domains %.1fx seq, front %d points" jobs
           (seq_s /. est_parallel_s)
           (List.length par_front))
      ~param:(string_of_int par_report.Mitigation.Frontier.r_evals) "pareto"
      est_parallel_s;
    Registry.row
      ~note:
        (Printf.sprintf "%d evals, %d hits (%.0f%% deduped)"
           bud_report.Mitigation.Frontier.r_evals
           bud_report.Mitigation.Frontier.r_hits (hit_rate *. 100.0))
      ~param:
        (String.concat "," (List.map string_of_int budgets))
      "budget-sweep" bud_s;
  ]

let bench =
  {
    Registry.name = "cegar";
    descr = "incremental CEGAR + mitigation frontier vs scratch oracles";
    default_out = "BENCH_cegar.json";
    run;
  }
