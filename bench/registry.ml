(* Shared workload registry for the unified bench driver (bench/main.ml).

   Each bench module exposes one [bench] value: a filter key, the default
   path of its committed full-run JSON, and a [run] function that executes
   the workloads, writes that per-bench JSON, and returns one [row] per
   timed section for the driver's cross-bench throughput table. The rows
   are the machine-readable common denominator — per-bench JSON files keep
   their richer bench-specific schemas. *)

type row = {
  r_workload : string;  (** section name, e.g. "tc" or "warm-disk" *)
  r_param : string;  (** scale knob as text; "" when the section has none *)
  r_wall_s : float;  (** wall-clock of the timed section *)
  r_ground_atoms : int option;
      (** ground atoms produced by the timed section, when grounding is
          what it measures — the numerator of the atoms/s column *)
  r_models : int option;
      (** models produced by the timed section, when solving is what it
          measures — the numerator of the models/s column *)
  r_note : string;  (** free-form detail: speedups, hit rates, guards *)
}

let row ?ground_atoms ?models ?(note = "") ~param workload wall_s =
  {
    r_workload = workload;
    r_param = param;
    r_wall_s = wall_s;
    r_ground_atoms = ground_atoms;
    r_models = models;
    r_note = note;
  }

type bench = {
  name : string;  (** filter key: "ground", "solver", "sweep", ... *)
  descr : string;  (** one-line summary for [--list] *)
  default_out : string;  (** committed full-run JSON, e.g. BENCH_ground.json *)
  run : smoke:bool -> out:string -> row list;
      (** run the bench, write its JSON to [out]; guards inside may [exit 2] *)
}

(* best-of-reps timer shared by the bench modules *)
let time ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let per_s count seconds =
  if seconds > 0.0 then float_of_int count /. seconds else 0.0
