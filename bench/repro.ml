(* Benchmark & reproduction harness.

   First prints one section per table/figure of the paper — the same rows
   the paper reports — then runs one Bechamel timing benchmark per
   experiment plus the scaling sweeps (see DESIGN.md §4 for the index). *)

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* T1: Table I — O-RA risk matrix                                       *)
(* ------------------------------------------------------------------ *)

let print_table1 () =
  section "T1: Table I — O-RA risk matrix (paper §IV.B)";
  print_string (Cpsrisk.Report.table_i ());
  Printf.printf "\npaper example: LM=M, LEF=L -> %s (paper: L)\n"
    (Qual.Level.to_string
       (Risk.Ora.risk ~lm:Qual.Level.Medium ~lef:Qual.Level.Low));
  Printf.printf "matrix monotone in both axes: %b\n"
    (Risk.Matrix.monotone Risk.Ora.risk_matrix)

(* ------------------------------------------------------------------ *)
(* T2: Table II — water-tank analysis results                           *)
(* ------------------------------------------------------------------ *)

let print_table2 () =
  section "T2: Table II — water-tank analysis results (paper §VII)";
  let rows = Cpsrisk.Water_tank.table_ii_rows () in
  print_string
    (Cpsrisk.Report.table_ii
       ~fault_ids:[ "F1"; "F2"; "F3"; "F4" ]
       ~mitigation_ids:[ "M1"; "M2" ]
       rows);
  (* cross-check against the ASP backend *)
  let agreements =
    List.for_all
      (fun (label, scenario) ->
        let row = List.assoc label rows in
        List.for_all
          (fun (rid, asp_violated) ->
            let dyn_violated =
              Epa.Requirement.violated (List.assoc rid row.Epa.Analysis.verdicts)
            in
            dyn_violated = asp_violated)
          (Cpsrisk.Water_tank.asp_verdicts ~scenario ()))
      Cpsrisk.Water_tank.paper_scenarios
  in
  Printf.printf
    "\nASP backend agreement on S1..S7 (dynamics vs stable models): %s\n"
    (if agreements then "7/7 scenarios agree" else "MISMATCH");
  let crit_faults, crit_violated =
    Cpsrisk.Water_tank.asp_critical_scenario ~mitigations:[ "M1"; "M2" ] ()
  in
  Printf.printf
    "reasoner cost-metric search (§II.C): most critical combination {%s} \
     violating {%s} — the paper's S5\n"
    (String.concat "," crit_faults)
    (String.concat "," crit_violated);
  let sweep = Cpsrisk.Water_tank.full_sweep ~mitigations:[ "M1"; "M2" ] () in
  match Epa.Analysis.most_severe sweep with
  | worst :: _ ->
      Printf.printf
        "most severe combination: {%s} — matches the paper's S5 discussion\n"
        (String.concat "," worst.Epa.Analysis.scenario.Epa.Scenario.faults)
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* F1: the experimental framework pipeline                              *)
(* ------------------------------------------------------------------ *)

let print_fig1 () =
  section "F1: Fig. 1 — experimental framework, end to end";
  let artifacts = Cpsrisk.Pipeline.run (Cpsrisk.Pipeline.water_tank_config ()) in
  print_string (Cpsrisk.Pipeline.render_log artifacts);
  Printf.printf "\nranked hazards:\n";
  List.iter
    (fun h ->
      Printf.printf "  %-22s risk %s\n"
        (Epa.Scenario.label h.Cpsrisk.Pipeline.row.Epa.Analysis.scenario)
        (Qual.Level.to_string h.Cpsrisk.Pipeline.risk))
    artifacts.Cpsrisk.Pipeline.confirmed_hazards

(* ------------------------------------------------------------------ *)
(* F2: risk attribute derivation tree                                   *)
(* ------------------------------------------------------------------ *)

let fig2_attributes =
  {
    Risk.Ora.no_attributes with
    Risk.Ora.contact_frequency = Some Qual.Level.High;
    probability_of_action = Some Qual.Level.Medium;
    threat_capability = Some Qual.Level.High;
    resistance_strength = Some Qual.Level.Medium;
    primary_loss = Some Qual.Level.High;
    secondary_loss = Some Qual.Level.Low;
  }

let print_fig2 () =
  section "F2: Fig. 2 — O-RA risk attribute derivation (explainable)";
  match Risk.Ora.assess fig2_attributes with
  | Ok a -> print_string (Cpsrisk.Report.fair_tree a.Risk.Ora.tree)
  | Error missing -> Printf.printf "missing: %s\n" missing

(* ------------------------------------------------------------------ *)
(* F3: hierarchical evaluation matrix + the three focuses               *)
(* ------------------------------------------------------------------ *)

let print_fig3 () =
  section "F3: Fig. 3 — hierarchical evaluation";
  print_string (Cpsrisk.Report.hierarchical_matrix ());
  print_endline "\nfocus 1 (topology-based propagation): compromise at the EWS";
  let r =
    Epa.Propagation.analyze Cpsrisk.Water_tank.topology
      ~active:
        [ Epa.Fault.make ~id:"F4" ~component:"ews" ~mode:Epa.Fault.Compromise () ]
  in
  Printf.printf "  affected components: %s\n"
    (String.concat ", " (Epa.Propagation.affected r));
  let path = Epa.Propagation.path_to "tank" Epa.Propagation.Value_err r in
  Printf.printf "  propagation path to the tank: %s\n"
    (String.concat " -> " (List.map fst path));
  print_endline "\nfocus 2 (detailed propagation analysis): exhaustive EPA";
  let hazardous = Epa.Analysis.hazardous (Cpsrisk.Water_tank.full_sweep ()) in
  Printf.printf "  %d hazardous scenarios confirmed by behaviour-level EPA\n"
    (List.length hazardous);
  print_endline "\nfocus 3 (mitigation plan): optimal selection";
  let sol = Mitigation.Optimizer.optimal Cpsrisk.Water_tank.optimization_problem in
  Format.printf "  %a@." Mitigation.Optimizer.pp_solution sol

(* ------------------------------------------------------------------ *)
(* F4: case-study model and asset refinement                            *)
(* ------------------------------------------------------------------ *)

let print_fig4 () =
  section "F4: Fig. 4 — case-study model and asset refinement";
  print_endline "high-level model:";
  print_string (Cpsrisk.Report.model_inventory Cpsrisk.Water_tank.model);
  Printf.printf "\nrefining 'Engineering Workstation': %d -> %d elements\n"
    (Archimate.Model.element_count Cpsrisk.Water_tank.model)
    (Archimate.Model.element_count Cpsrisk.Water_tank.refined_model);
  (match
     Cegar.Refine.attack_path Cpsrisk.Water_tank.refined_model ~entry:"email"
       ~target:"infected"
   with
  | Some path ->
      Printf.printf "attack flow (spam link): %s\n" (String.concat " -> " path)
  | None -> print_endline "no attack path (unexpected)");
  print_endline
    "mitigations attached to refined aspects: M1 -> E-mail Client, M2 -> Browser"

(* ------------------------------------------------------------------ *)
(* L: paper listings through the embedded ASP engine                    *)
(* ------------------------------------------------------------------ *)

let print_listings () =
  section "L: Listings 1-2 — parsed by the embedded ASP engine";
  let listing1 =
    "potential_fault(C, F) :- component(C), fault(F), mitigation(F, M), not \
     active_mitigation(C, M)."
  in
  let listing2 =
    "component_state(C, X) :- prev_component_state(C, X), active_fault(C, \
     stuck_at_x)."
  in
  List.iter
    (fun src ->
      let rule = Asp.Parser.parse_rule src in
      Printf.printf "parsed: %s\n" (Asp.Rule.to_string rule))
    [ listing1; listing2 ];
  let scenario = Epa.Scenario.make [ "F2"; "F3" ] in
  let g = Asp.Grounder.ground (Cpsrisk.Water_tank.asp_program ~scenario ()) in
  Printf.printf
    "\ngenerated temporal program for scenario {F2,F3}: %d ground rules, %d atoms\n"
    (Asp.Ground.rule_count g) (Asp.Ground.atom_count g);
  match Asp.Solver.solve g with
  | [ m ] ->
      Printf.printf "unique stable model; violated: %s\n"
        (String.concat ", "
           (List.map Asp.Atom.to_string (Asp.Model.by_predicate m "violated")))
  | models -> Printf.printf "unexpected model count %d\n" (List.length models)

(* ------------------------------------------------------------------ *)
(* X1: cost-benefit optimization sweep                                  *)
(* ------------------------------------------------------------------ *)

let print_opt () =
  section "X1: §IV.D — mitigation cost-benefit optimization";
  let problem = Cpsrisk.Water_tank.optimization_problem in
  print_endline "budget sweep (residual = severity-weighted violations):";
  List.iter
    (fun (budget, sol) ->
      Printf.printf "  budget %2d -> {%-12s} cost=%2d residual=%2d\n" budget
        (String.concat "," sol.Mitigation.Optimizer.selected)
        sol.Mitigation.Optimizer.cost sol.Mitigation.Optimizer.residual)
    (Mitigation.Optimizer.budget_sweep problem
       ~budgets:[ 0; 1; 2; 4; 6; 7; 9; 12; 24 ]);
  print_endline "\nPareto front (cost vs residual):";
  List.iter
    (fun sol -> Format.printf "  %a@." Mitigation.Optimizer.pp_solution sol)
    (Mitigation.Optimizer.pareto problem);
  print_endline "\nmulti-phase consolidation (budgets 2 then 4 then 7):";
  List.iteri
    (fun i sol ->
      Printf.printf "  after phase %d: {%s} residual=%d\n" (i + 1)
        (String.concat "," sol.Mitigation.Optimizer.selected)
        sol.Mitigation.Optimizer.residual)
    (Mitigation.Optimizer.multi_phase problem ~phase_budgets:[ 2; 4; 7 ]);
  print_endline
    "\nASP cross-check: one joint logic program (16 scenarios x mitigation \
     choice x weak constraints):";
  let asp_selected, asp_residual = Cpsrisk.Water_tank.asp_optimal_mitigations () in
  let ocaml = Mitigation.Optimizer.optimal problem in
  Printf.printf "  ASP optimum   {%s} residual=%d\n"
    (String.concat "," asp_selected)
    asp_residual;
  Printf.printf "  OCaml optimum {%s} residual=%d -> %s\n"
    (String.concat "," ocaml.Mitigation.Optimizer.selected)
    ocaml.Mitigation.Optimizer.residual
    (if
       asp_selected = ocaml.Mitigation.Optimizer.selected
       && asp_residual = ocaml.Mitigation.Optimizer.residual
     then "AGREE"
     else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* X2: uncertainty — RST + sensitivity                                  *)
(* ------------------------------------------------------------------ *)

let print_uncertainty () =
  section "X2: §V — uncertainty handling (RST + sensitivity)";
  let lvl = Qual.Level.of_index_clamped in
  let narrow = { Rough.Risk_bridge.lm = [ lvl 0; lvl 1 ]; lef = [ lvl 1 ] } in
  let wide =
    { Rough.Risk_bridge.lm = [ lvl 1; lvl 2; lvl 3; lvl 4 ]; lef = [ lvl 1 ] }
  in
  let show name u =
    Printf.printf "  %-22s outcomes {%s} -> %s\n" name
      (String.concat ","
         (List.map Qual.Level.to_string (Rough.Risk_bridge.possible_risks u)))
      (if Rough.Risk_bridge.is_sensitive u then "sensitive" else "insensitive")
  in
  print_endline "the paper's LM example (LEF = L):";
  show "LM in {VL,L}" narrow;
  show "LM in {L..VH}" wide;
  print_endline "\nsensitivity tornado around (LM=M, LEF=L):";
  let f a = Risk.Ora.risk ~lm:(List.assoc "lm" a) ~lef:(List.assoc "lef" a) in
  print_string
    (Sensitivity.Oat.render
       (Sensitivity.Oat.analyze
          ~factors:
            [
              { Sensitivity.Oat.name = "lm"; candidates = Qual.Level.all };
              { Sensitivity.Oat.name = "lef"; candidates = Qual.Level.all };
            ]
          ~baseline:[ ("lm", Qual.Level.Medium); ("lef", Qual.Level.Low) ]
          ~f))

(* ------------------------------------------------------------------ *)
(* X3: FTA baseline comparison                                          *)
(* ------------------------------------------------------------------ *)

let print_fta () =
  section "X3: §III.A — qualitative EPA vs naive structural FTA";
  let rows = Cpsrisk.Water_tank.full_sweep () in
  List.iter
    (fun rid ->
      let exact = Fta.From_epa.of_analysis ~requirement:rid rows in
      Printf.printf "exact minimal cut sets for %s: %s\n" rid
        (String.concat " "
           (List.map
              (fun c -> "{" ^ String.concat "," c ^ "}")
              (Fta.Cutset.minimal_cut_sets exact))))
    [ "R1"; "R2" ];
  let structural =
    Fta.From_epa.structural ~topology:Cpsrisk.Water_tank.topology ~asset:"tank"
      ~faults:Cpsrisk.Water_tank.faults
  in
  let exact_r1 =
    Fta.Cutset.minimal_cut_sets (Fta.From_epa.of_analysis ~requirement:"R1" rows)
  in
  let structural_cuts = Fta.Cutset.minimal_cut_sets structural in
  Printf.printf "\nstructural (topology-only) cut sets for the tank: %s\n"
    (String.concat " "
       (List.map (fun c -> "{" ^ String.concat "," c ^ "}") structural_cuts));
  let cmp =
    Fta.From_epa.compare_cut_sets ~exact:exact_r1 ~structural:structural_cuts
  in
  Printf.printf
    "spurious structural cut sets (compensated faults EPA eliminates): %s\n"
    (String.concat " "
       (List.map
          (fun c -> "{" ^ String.concat "," c ^ "}")
          cmp.Fta.From_epa.spurious));
  Printf.printf
    "hazards escaping the structural tree: %s (over-approximation holds: %b)\n"
    (String.concat " "
       (List.map (fun c -> "{" ^ String.concat "," c ^ "}") cmp.Fta.From_epa.escaped))
    (cmp.Fta.From_epa.escaped = [])

(* ------------------------------------------------------------------ *)
(* X4: quantitative risk — DTMC, quantitative FTA, expected loss        *)
(* ------------------------------------------------------------------ *)

let fault_probability = function
  | "F4" -> 0.05 (* phishing campaign succeeds during the mission *)
  | _ -> 0.02 (* physical fault modes *)

let print_quantitative () =
  section "X4: quantitative risk (step 6 'rough-granular' analysis)";
  let rows = Cpsrisk.Water_tank.full_sweep () in
  let all = [ "F1"; "F2"; "F3"; "F4" ] in
  (* quantitative FTA over the EPA-exact trees *)
  List.iter
    (fun rid ->
      let tree = Fta.From_epa.of_analysis ~requirement:rid rows in
      Printf.printf "P(%s violated) = %.4f   (cut sets %s)\n" rid
        (Fta.Quant.top_event_probability tree fault_probability)
        (String.concat " "
           (List.map
              (fun c -> "{" ^ String.concat "," c ^ "}")
              (Fta.Cutset.minimal_cut_sets tree))))
    [ "R1"; "R2" ];
  let r1_tree = Fta.From_epa.of_analysis ~requirement:"R1" rows in
  print_endline "\nBirnbaum importance (which fault most deserves a mitigation):";
  List.iter
    (fun (e, v) -> Printf.printf "  %-4s %.4f\n" e v)
    (Fta.Quant.birnbaum_importance r1_tree fault_probability);
  (* the paper's S5-vs-S7 probability argument, quantified *)
  let s5 = Fta.Quant.scenario_probability ~all fault_probability [ "F2"; "F3" ] in
  let s7 =
    Fta.Quant.scenario_probability ~all fault_probability [ "F1"; "F2"; "F3" ]
  in
  Printf.printf
    "\nP(exactly S5 faults) = %.6f vs P(exactly S7 faults) = %.6f (x%.0f)\n" s5
    s7 (s5 /. s7);
  (* mission-level DTMC: phishing -> compromise -> overflow *)
  let chain ~training =
    let p_phish = if training then 0.01 else 0.05 in
    Markov.Dtmc.make
      ~states:[ "nominal"; "compromised"; "valve_fault"; "overflow" ]
      ~transitions:
        [
          ("nominal", "compromised", p_phish);
          ("nominal", "valve_fault", 0.02);
          ("compromised", "overflow", 0.5);
          ("compromised", "nominal", 0.3);
          ("valve_fault", "overflow", 0.6);
          ("valve_fault", "nominal", 0.4);
          ("overflow", "overflow", 1.0);
        ]
  in
  let p_base =
    Markov.Dtmc.transient (chain ~training:false) ~init:"nominal" ~steps:52
    |> List.assoc "overflow"
  in
  let p_trained =
    Markov.Dtmc.transient (chain ~training:true) ~init:"nominal" ~steps:52
    |> List.assoc "overflow"
  in
  Printf.printf
    "\nDTMC (52-week mission): P(overflow) = %.3f untrained vs %.3f with user \
     training\n"
    p_base p_trained;
  (* expected-loss intervals: the cost-benefit in money *)
  let exposure p = Risk.Loss.annual_loss_exposure [ (p, Qual.Level.Very_high) ] in
  let base = exposure p_base and trained = exposure p_trained in
  Format.printf
    "annual loss exposure: %a untrained vs %a trained — benefit midpoint %.0f \
     vs M1 cost 2 (money units scale: see Risk.Loss bands)@."
    Risk.Loss.pp base Risk.Loss.pp trained
    (Risk.Loss.midpoint base -. Risk.Loss.midpoint trained)

(* ------------------------------------------------------------------ *)
(* AG: attack-graph view of the scenario space                         *)
(* ------------------------------------------------------------------ *)

let print_attack_graph () =
  section "AG: attack graph over the refined model (scenario space, §IV.A)";
  let g = Attackgraph.Graph.generate Cpsrisk.Water_tank.refined_model in
  let n_nodes, n_edges = Attackgraph.Graph.size g in
  Printf.printf "nodes (component x technique): %d, edges: %d\n" n_nodes n_edges;
  Printf.printf "entry nodes: %d, goal nodes: %d\n"
    (List.length (Attackgraph.Graph.entry_nodes g))
    (List.length (Attackgraph.Graph.goal_nodes g));
  let scenarios = Attackgraph.Graph.attack_scenarios ~max_length:5 g in
  Printf.printf "entry->goal attack scenarios (<=5 steps): %d\n"
    (List.length scenarios);
  print_endline "sample scenarios:";
  List.iteri
    (fun i path ->
      if i < 5 then
        Printf.printf "  [%s] %s\n"
          (Qual.Level.to_string (Attackgraph.Graph.severity path))
          (String.concat " -> "
             (List.map (Format.asprintf "%a" Attackgraph.Graph.pp_node) path)))
    scenarios

(* ------------------------------------------------------------------ *)
(* AB: abstraction ablation — ambiguous vs deterministic dynamics       *)
(* ------------------------------------------------------------------ *)

let print_ablation () =
  section
    "AB: ablation — qualitative ambiguity (§V.B) vs deterministic dynamics";
  let exact = Epa.Analysis.run Cpsrisk.Water_tank.system in
  let uncertain =
    Epa.Analysis.run ~horizon:12 Cpsrisk.Water_tank.uncertain_system
  in
  Printf.printf
    "deterministic model: %2d/%d scenarios hazardous\n"
    (List.length (Epa.Analysis.hazardous exact))
    (List.length exact);
  Printf.printf
    "ambiguous model:     %2d/%d scenarios hazardous (over-approximation: no \
     hazard overlooked, spurious ones included)\n"
    (List.length (Epa.Analysis.hazardous uncertain))
    (List.length uncertain);
  let exact_labels =
    List.map
      (fun (r : Epa.Analysis.row) -> Epa.Scenario.label r.Epa.Analysis.scenario)
      (Epa.Analysis.hazardous exact)
  in
  let spurious =
    List.filter
      (fun (r : Epa.Analysis.row) ->
        not (List.mem (Epa.Scenario.label r.Epa.Analysis.scenario) exact_labels))
      (Epa.Analysis.hazardous uncertain)
  in
  Printf.printf "spurious candidates eliminated by CEGAR refinement: %s\n"
    (String.concat " "
       (List.map
          (fun (r : Epa.Analysis.row) ->
            Epa.Scenario.label r.Epa.Analysis.scenario)
          spurious))

(* ------------------------------------------------------------------ *)
(* S1: scaling shapes                                                   *)
(* ------------------------------------------------------------------ *)

let print_scaling () =
  section "S1: scaling — scenario space and ground-program growth";
  print_endline "cascaded tanks (n faults -> 2^n scenarios, EPA sweep):";
  List.iter
    (fun n ->
      let rows = Epa.Analysis.run (Cpsrisk.Cascade.system n) in
      Printf.printf "  n=%d: %4d scenarios, %4d hazardous\n" n
        (List.length rows)
        (List.length (Epa.Analysis.hazardous rows)))
    [ 2; 4; 6; 8 ];
  print_endline "\nASP grounder growth (transitive closure over an n-chain):";
  List.iter
    (fun n ->
      let g = Asp.Grounder.ground (Cpsrisk.Cascade.asp_chain_program n) in
      Printf.printf "  n=%2d: %5d ground rules, %5d atoms\n" n
        (Asp.Ground.rule_count g) (Asp.Ground.atom_count g))
    [ 10; 20; 40 ];
  print_endline "\nstable-model enumeration (k choice atoms -> 2^(k-1) models):";
  List.iter
    (fun k ->
      let g = Asp.Grounder.ground (Cpsrisk.Cascade.asp_choice_program k) in
      let models, stats = Asp.Solver.solve_with_stats g in
      Printf.printf "  k=%2d: %5d stable models  (%s)\n" k
        (List.length models)
        (Asp.Solver.Stats.to_string stats))
    [ 4; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* Bechamel timing benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let timing_tests () =
  let open Bechamel in
  let stage = Staged.stage in
  [
    Test.make ~name:"table1/ora-matrix"
      (stage (fun () ->
           List.iter
             (fun lm ->
               List.iter
                 (fun lef -> ignore (Risk.Ora.risk ~lm ~lef))
                 Qual.Level.all)
             Qual.Level.all));
    Test.make ~name:"table2/scenario-analysis"
      (stage (fun () -> ignore (Cpsrisk.Water_tank.table_ii_rows ())));
    Test.make ~name:"table2/asp-backend-s5"
      (stage (fun () ->
           ignore
             (Cpsrisk.Water_tank.asp_verdicts
                ~scenario:
                  (Epa.Scenario.make ~mitigations:[ "M1"; "M2" ] [ "F2"; "F3" ])
                ())));
    Test.make ~name:"fig1/pipeline"
      (stage (fun () ->
           ignore (Cpsrisk.Pipeline.run (Cpsrisk.Pipeline.water_tank_config ()))));
    Test.make ~name:"fig2/fair-derivation"
      (stage (fun () -> ignore (Risk.Ora.assess fig2_attributes)));
    Test.make ~name:"fig3/hierarchical-epa-sweep"
      (stage (fun () -> ignore (Cpsrisk.Water_tank.full_sweep ())));
    Test.make ~name:"fig4/refinement-attack-path"
      (stage (fun () ->
           ignore
             (Cegar.Refine.attack_path Cpsrisk.Water_tank.refined_model
                ~entry:"email" ~target:"infected")));
    Test.make ~name:"listings/parse-ground-solve"
      (stage (fun () ->
           let scenario = Epa.Scenario.make [ "F2"; "F3" ] in
           ignore
             (Asp.Solver.solve
                (Asp.Grounder.ground (Cpsrisk.Water_tank.asp_program ~scenario ())))));
    Test.make ~name:"opt/budget-sweep"
      (stage (fun () ->
           ignore
             (Mitigation.Optimizer.budget_sweep
                Cpsrisk.Water_tank.optimization_problem ~budgets:[ 0; 2; 7 ])));
    Test.make ~name:"uncertainty/rst+oat"
      (stage (fun () ->
           let wide =
             { Rough.Risk_bridge.lm = Qual.Level.all; lef = [ Qual.Level.Low ] }
           in
           ignore (Rough.Risk_bridge.possible_risks wide);
           ignore
             (Sensitivity.Oat.analyze
                ~factors:
                  [ { Sensitivity.Oat.name = "lm"; candidates = Qual.Level.all } ]
                ~baseline:[ ("lm", Qual.Level.Medium); ("lef", Qual.Level.Low) ]
                ~f:(fun a ->
                  Risk.Ora.risk ~lm:(List.assoc "lm" a)
                    ~lef:(List.assoc "lef" a)))));
    Test.make ~name:"fta/cutsets"
      (stage
         (let rows = Cpsrisk.Water_tank.full_sweep () in
          fun () ->
            ignore
              (Fta.Cutset.minimal_cut_sets
                 (Fta.From_epa.of_analysis ~requirement:"R2" rows))));
    Test.make ~name:"x4/quant-fta"
      (stage
         (let rows = Cpsrisk.Water_tank.full_sweep () in
          let tree = Fta.From_epa.of_analysis ~requirement:"R1" rows in
          fun () ->
            ignore (Fta.Quant.top_event_probability tree fault_probability);
            ignore (Fta.Quant.birnbaum_importance tree fault_probability)));
    Test.make ~name:"x4/dtmc-transient"
      (stage
         (let chain =
            Markov.Dtmc.make
              ~states:[ "nominal"; "compromised"; "valve_fault"; "overflow" ]
              ~transitions:
                [
                  ("nominal", "compromised", 0.05);
                  ("nominal", "valve_fault", 0.02);
                  ("compromised", "overflow", 0.5);
                  ("compromised", "nominal", 0.3);
                  ("valve_fault", "overflow", 0.6);
                  ("valve_fault", "nominal", 0.4);
                  ("overflow", "overflow", 1.0);
                ]
          in
          fun () -> ignore (Markov.Dtmc.transient chain ~init:"nominal" ~steps:52)));
    Test.make ~name:"ag/generate+scenarios"
      (stage (fun () ->
           let g = Attackgraph.Graph.generate Cpsrisk.Water_tank.refined_model in
           ignore (Attackgraph.Graph.attack_scenarios ~max_length:5 g)));
    Test.make_indexed ~name:"scale/epa-sweep" ~args:[ 2; 4; 6 ] (fun n ->
        stage (fun () -> ignore (Epa.Analysis.run (Cpsrisk.Cascade.system n))));
    Test.make_indexed ~name:"scale/asp-ground-chain" ~args:[ 10; 20; 40 ]
      (fun n ->
        stage (fun () ->
            ignore (Asp.Grounder.ground (Cpsrisk.Cascade.asp_chain_program n))));
    Test.make_indexed ~name:"scale/asp-enumerate" ~args:[ 4; 8; 10 ] (fun k ->
        stage (fun () ->
            ignore
              (Asp.Solver.solve
                 (Asp.Grounder.ground (Cpsrisk.Cascade.asp_choice_program k)))));
  ]

let run_timings () =
  section "timings (Bechamel, monotonic clock)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"cpsrisk" ~fmt:"%s %s" (timing_tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ ns ] -> (name, ns) :: acc
        | Some _ | None -> (name, nan) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-40s %s/run\n" name pretty)
    rows

let () =
  print_table1 ();
  print_table2 ();
  print_fig1 ();
  print_fig2 ();
  print_fig3 ();
  print_fig4 ();
  print_listings ();
  print_opt ();
  print_uncertainty ();
  print_fta ();
  print_quantitative ();
  print_attack_graph ();
  print_ablation ();
  print_scaling ();
  run_timings ();
  print_newline ()
