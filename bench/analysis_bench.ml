(* Semantic-analysis bench: wall-time of the Analysis.Infer fixpoint and
   the payoff of its selectivity-based join ordering on the grounder, on
   four workload shapes:

   - tank h:   the water-tank temporal encoding at horizon h (the paper's
               actual workload shape);
   - pigeon h: h+1 pigeons into h holes — the grounding-blowup shape L212
               warns about;
   - tc n:     transitive closure over an n-node chain (recursive,
               interval-heavy);
   - join n:   a skewed triple join (two wide relations, one tiny filter)
               where enumerating the filter first shrinks the search from
               O(n²) to O(n) — the shape `join_order` exists for.

   Every entry times the analysis itself, compares the predicted ground
   universe against the actual one (the within-10x contract pinned by
   test_analysis), and grounds each program twice — unordered and with
   `~order:(Infer.join_order info)` — checking the two results bit-for-bit
   equal and reporting the speedup. Ordered grounding must never be
   slower: entries large enough to time reliably (>= 10 ms unordered)
   fail the bench past a noise tolerance. Emits JSON (committed as
   BENCH_analysis.json at the repo root for the full sweep;
   `dune build @analysis-smoke` runs a seconds-scale subset as part of
   the test tree). *)

let time ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let pigeon_program holes =
  let pigeons = holes + 1 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pigeon(1..%d).\n" pigeons);
  Buffer.add_string buf (Printf.sprintf "hole(1..%d).\n" holes);
  Buffer.add_string buf "{ at(P,H) : hole(H) } :- pigeon(P).\n";
  Buffer.add_string buf "placed(P) :- at(P,H).\n";
  Buffer.add_string buf ":- pigeon(P), not placed(P).\n";
  Buffer.add_string buf ":- at(P,H), at(Q,H), P < Q.\n";
  Asp.Parser.parse_program (Buffer.contents buf)

let join_program n =
  Asp.Parser.parse_program
    (Printf.sprintf
       "big(1..%d).\nsel(1). sel(2). sel(3).\nhit(X) :- big(X), sel(X).\n\
        pair(X, Y) :- big(X), big(Y), sel(Y).\n#show pair/2.\n"
       n)

type entry = {
  workload : string;
  param : int;
  analysis_s : float;
  predicted_atoms : float;
  ground_atoms : int;
  unordered_s : float;
  ordered_s : float;
  reordered : int;  (* rules for which join_order adopted a permutation *)
  rules : int;
}

(* noise tolerance for the never-slower check; only enforced on entries
   whose unordered grounding takes long enough to time reliably *)
let tolerance = 1.25
let min_reliable_s = 0.010

let run ~reps name param program =
  let info, analysis_s = time ~reps (fun () -> Analysis.Infer.analyze program) in
  let predicted_atoms =
    List.fold_left
      (fun acc (p : Analysis.Infer.pred_info) -> acc +. p.Analysis.Infer.card)
      0.0
      (Analysis.Infer.preds info)
  in
  let g_plain, unordered_s =
    time ~reps (fun () -> Asp.Grounder.ground program)
  in
  (* the permutation search itself is analysis-time work a caller does
     once per program — memoize it so the timed region measures only the
     grounder's ordered enumeration *)
  let orders = Hashtbl.create 64 in
  List.iter
    (fun r -> Hashtbl.replace orders r (Analysis.Infer.join_order info r))
    (Asp.Program.rules program);
  let order r = Option.join (Hashtbl.find_opt orders r) in
  let g_ordered, ordered_s =
    time ~reps (fun () -> Asp.Grounder.ground ~order program)
  in
  if not (Asp.Ground.equal g_plain g_ordered) then begin
    Printf.eprintf "ordered/unordered grounding disagree on %s %d\n" name param;
    exit 2
  end;
  if unordered_s >= min_reliable_s && ordered_s > unordered_s *. tolerance
  then begin
    Printf.eprintf "ordered grounding slower on %s %d: %.4fs vs %.4fs\n" name
      param ordered_s unordered_s;
    exit 2
  end;
  let rules = Asp.Program.rules program in
  let reordered =
    List.length (List.filter (fun r -> order r <> None) rules)
  in
  let ground_atoms = Asp.Ground.atom_count g_plain in
  Printf.eprintf
    "  %-6s %4d: analyze %8.4fs, predicted %8.0f / actual %6d atoms, \
     ground %8.4fs -> ordered %8.4fs (%.2fx, %d/%d rules reordered)\n%!"
    name param analysis_s predicted_atoms ground_atoms unordered_s ordered_s
    (unordered_s /. ordered_s)
    reordered (List.length rules);
  {
    workload = name;
    param;
    analysis_s;
    predicted_atoms;
    ground_atoms;
    unordered_s;
    ordered_s;
    reordered;
    rules = List.length rules;
  }

let emit_json out mode entries =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"semantic-analysis\",\n";
  p "  \"mode\": %S,\n" mode;
  p
    "  \"reference\": \"Asp.Grounder.ground without ~order; ordered output \
     checked bit-for-bit equal\",\n";
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      p
        "    {\"workload\": %S, \"param\": %d, \"analysis_s\": %.6f,\n\
        \     \"predicted_atoms\": %.1f, \"ground_atoms\": %d, \
         \"card_ratio\": %.3f,\n\
        \     \"unordered_s\": %.6f, \"ordered_s\": %.6f, \
         \"order_speedup\": %.3f,\n\
        \     \"reordered_rules\": %d, \"rules\": %d}%s\n"
        e.workload e.param e.analysis_s e.predicted_atoms e.ground_atoms
        (e.predicted_atoms /. float_of_int (max 1 e.ground_atoms))
        e.unordered_s e.ordered_s
        (e.unordered_s /. e.ordered_s)
        e.reordered e.rules
        (if i = List.length entries - 1 then "" else ","))
    entries;
  p "  ]\n}\n";
  close_out oc

let run_bench ~smoke ~out =
  let reps = if smoke then 1 else 3 in
  let tank_hs = if smoke then [ 6 ] else [ 6; 12; 24; 48 ] in
  let pigeon_hs = if smoke then [ 6 ] else [ 6; 10; 14 ] in
  let tc_ns = if smoke then [ 40 ] else [ 40; 80; 120; 200 ] in
  let join_ns = if smoke then [ 200 ] else [ 200; 400; 800 ] in
  let entries =
    List.map
      (fun h ->
        run ~reps "tank" h
          (Cpsrisk.Water_tank.asp_program ~horizon:h
             ~scenario:(Epa.Scenario.make [])
             ()))
      tank_hs
    @ List.map (fun h -> run ~reps "pigeon" h (pigeon_program h)) pigeon_hs
    @ List.map
        (fun n -> run ~reps "tc" n (Cpsrisk.Cascade.asp_chain_program n))
        tc_ns
    @ List.map (fun n -> run ~reps "join" n (join_program n)) join_ns
  in
  emit_json out (if smoke then "smoke" else "full") entries;
  Printf.eprintf "wrote %s\n" out;
  List.map
    (fun e ->
      Registry.row ~ground_atoms:e.ground_atoms
        ~note:
          (Printf.sprintf "ordered %.2fx, %d/%d rules reordered"
             (e.unordered_s /. e.ordered_s)
             e.reordered e.rules)
        ~param:(string_of_int e.param) e.workload e.ordered_s)
    entries

let bench =
  {
    Registry.name = "analysis";
    descr = "semantic-analysis fixpoint + join-ordering payoff";
    default_out = "BENCH_analysis.json";
    run = run_bench;
  }
