(* Batch sweep engine vs the naive one-scenario-at-a-time loop, on the
   water-tank temporal encoding.

   Workload: a seeded-random delta list drawn from a modest fault/mitigation
   pool, so deltas repeat — the shape of mitigation-search and CEGAR
   workloads, and what the content-addressed cache is for. Modes:

   - seq-cold:      no engine; per delta, rebuild the full scenario program
                    (Water_tank.asp_program), ground it from scratch, solve.
   - engine-1:      Engine.Sweep, one domain, fresh cache. Gains: base
                    program built/fingerprinted once, grounding seeded with
                    the base universe, duplicate deltas answered by hash.
   - engine-cached: the same sweep re-run on the kept cache — pure lookups.
   - engine-2/4:    fresh cache, 2 and 4 worker domains.

   Every engine mode is checked bit-identical to seq-cold (same models per
   job). Emits JSON (committed as BENCH_sweep.json at the repo root for the
   full run; `dune build @sweep-smoke` runs a seconds-scale subset as part
   of the test tree). *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let model_sets (models : Asp.Model.t list) =
  List.map Asp.Model.to_list models

type entry = {
  name : string;
  jobs : int;
  domains : int; (* actual worker domains after the hardware cap *)
  wall_s : float;
  hits : int;
  misses : int;
  guesses : int;
  firings : int;
  reused_rules : int;
  fresh_rules : int;
}

let entry_of_report name ~domains (r : Engine.Sweep.report) wall_s =
  {
    name;
    jobs = r.Engine.Sweep.jobs;
    domains;
    wall_s;
    hits = r.Engine.Sweep.hits;
    misses = r.Engine.Sweep.misses;
    guesses = r.Engine.Sweep.fresh.Asp.Solver.Stats.guesses;
    firings = r.Engine.Sweep.fresh.Asp.Solver.Stats.firings;
    reused_rules = r.Engine.Sweep.ground.Asp.Grounder.Stats.reused_rules;
    fresh_rules = r.Engine.Sweep.ground.Asp.Grounder.Stats.fresh_rules;
  }

let emit_json out mode ~deltas ~horizon ~seed ~base_atoms entries =
  let cold_s =
    match entries with e :: _ -> e.wall_s | [] -> assert false
  in
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"scenario-sweep-engine\",\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"workload\": \"water-tank temporal ASP, seeded-random deltas\",\n";
  p "  \"deltas\": %d,\n" deltas;
  p "  \"horizon\": %d,\n" horizon;
  p "  \"seed\": %d,\n" seed;
  p "  \"base_atoms\": %d,\n" base_atoms;
  p "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      p
        "    {\"name\": %S, \"jobs\": %d, \"domains\": %d, \"wall_s\": \
         %.6f, \"speedup_vs_cold\": %.2f,\n\
        \     \"cache_hits\": %d, \"cache_misses\": %d, \
         \"fresh_guesses\": %d, \"fresh_firings\": %d,\n\
        \     \"ground_reused_rules\": %d, \"ground_fresh_rules\": %d}%s\n"
        e.name e.jobs e.domains e.wall_s
        (cold_s /. e.wall_s)
        e.hits e.misses e.guesses e.firings e.reused_rules e.fresh_rules
        (if i = List.length entries - 1 then "" else ",");
      ())
    entries;
  p "  ]\n}\n";
  close_out oc

let run ~smoke ~out =
  let n = if smoke then 24 else 256 in
  let horizon = if smoke then 6 else 12 in
  let seed = 1 in
  let deltas = Cpsrisk.Sweeps.random_deltas ~seed n in
  let spec = Cpsrisk.Sweeps.water_tank_spec ~horizon deltas in

  (* reference: the pre-engine loop — full rebuild + cold grounding per
     delta, no sharing of any kind *)
  let cold, cold_s =
    wall (fun () ->
        List.map
          (fun d ->
            let scenario = Cpsrisk.Sweeps.delta_scenario d in
            let p = Cpsrisk.Water_tank.asp_program ~horizon ~scenario () in
            model_sets (Asp.Solver.solve (Asp.Grounder.ground p)))
          deltas)
  in
  Printf.eprintf "  seq-cold      : %8.4fs (%d jobs)\n%!" cold_s n;

  let check name (r : Engine.Sweep.report) =
    Array.iteri
      (fun i (res : Engine.Job.result) ->
        if model_sets res.Engine.Job.models <> List.nth cold i then begin
          Printf.eprintf "%s disagrees with seq-cold on job %d (%s)\n" name i
            (Engine.Delta.label res.Engine.Job.delta);
          exit 2
        end)
      r.Engine.Sweep.results
  in
  let engine name ?cache ?(oversubscribe = false) jobs =
    let r, s =
      wall (fun () -> Engine.Sweep.run ~oversubscribe ~jobs ?cache spec)
    in
    check name r;
    (* the pool caps at the hardware's useful parallelism unless
       oversubscribed — record the width that actually ran, not just the
       one requested *)
    let domains =
      if oversubscribe then jobs
      else min jobs (Domain.recommended_domain_count ())
    in
    Printf.eprintf
      "  %-14s: %8.4fs (%.1fx cold), %d domains, %d hits / %d misses\n%!"
      name s (cold_s /. s) domains r.Engine.Sweep.hits r.Engine.Sweep.misses;
    (r, entry_of_report name ~domains r s)
  in

  let kept = Engine.Cache.create () in
  let r1, e1 = engine "engine-1" ~cache:kept 1 in
  let _, e1c = engine "engine-cached" ~cache:kept 1 in
  let _, e2 = engine "engine-2" 2 in
  let _, e4 = engine "engine-4" 4 in
  let _, e4o = engine "engine-4-over" ~oversubscribe:true 4 in
  let cold_entry =
    { name = "seq-cold"; jobs = 1; domains = 1; wall_s = cold_s; hits = 0;
      misses = n; guesses = 0; firings = 0; reused_rules = 0;
      fresh_rules = 0 }
  in
  let entries = [ cold_entry; e1; e1c; e2; e4; e4o ] in
  emit_json out
    (if smoke then "smoke" else "full")
    ~deltas:n ~horizon ~seed ~base_atoms:r1.Engine.Sweep.base_atoms entries;
  Printf.eprintf "wrote %s\n" out;
  let total_models = List.fold_left (fun acc ms -> acc + List.length ms) 0 cold in
  List.map
    (fun e ->
      Registry.row ~models:total_models
        ~note:
          (Printf.sprintf "%.1fx cold, %d hits / %d misses" (cold_s /. e.wall_s)
             e.hits e.misses)
        ~param:(string_of_int e.jobs) e.name e.wall_s)
    entries

let bench =
  {
    Registry.name = "sweep";
    descr = "batch sweep engine vs one-scenario-at-a-time loop";
    default_out = "BENCH_sweep.json";
    run;
  }
