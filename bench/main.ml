(* Unified bench driver: one entry point over the shared workload
   registry (Registry.bench values exported by the bench modules).

     dune exec bench/main.exe -- [--filter SUB]... [--smoke] [--out PATH]
                                 [--json PATH] [--list]

   - --filter SUB  run only benches whose name contains SUB (repeatable;
                   default: all). The per-bench dune smoke rules are thin
                   wrappers over this, e.g. `main.exe --filter ground
                   --smoke --out ground_smoke.json`.
   - --smoke       seconds-scale subsets (what `dune runtest` runs);
                   without it, the full sweeps that refresh the committed
                   BENCH_*.json files.
   - --out PATH    override the per-bench JSON path; only meaningful when
                   the filter selects exactly one bench.
   - --json PATH   also write the cross-bench summary table as JSON rows.
   - --list        print the registry and exit.

   After running, prints one throughput table over every row the selected
   benches reported: wall seconds plus ground atoms/s and models/s where
   the section grounds or solves. Guards inside the benches (differential
   checks, never-slower, probe efficiency) exit 2 and fail the driver. *)

let benches : Registry.bench list =
  [
    Ground_bench.bench;
    Solver_bench.bench;
    Sweep_bench.bench;
    Analysis_bench.bench;
    Serve_bench.bench;
    Cegar_bench.bench;
  ]

let usage () =
  prerr_endline
    "usage: main.exe [--filter SUB]... [--smoke] [--out PATH] [--json PATH] \
     [--list]";
  exit 1

type opts = {
  mutable filters : string list;
  mutable smoke : bool;
  mutable out : string option;
  mutable json : string option;
  mutable list : bool;
}

let parse_args () =
  let o = { filters = []; smoke = false; out = None; json = None; list = false } in
  let rec go = function
    | [] -> o
    | "--smoke" :: rest ->
        o.smoke <- true;
        go rest
    | "--list" :: rest ->
        o.list <- true;
        go rest
    | "--filter" :: sub :: rest ->
        o.filters <- o.filters @ [ sub ];
        go rest
    | "--out" :: path :: rest ->
        o.out <- Some path;
        go rest
    | "--json" :: path :: rest ->
        o.json <- Some path;
        go rest
    | a :: _ ->
        Printf.eprintf "unknown argument %S\n" a;
        usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let selected o =
  match o.filters with
  | [] -> benches
  | fs ->
      List.filter
        (fun (b : Registry.bench) ->
          List.exists (fun f -> contains ~sub:f b.Registry.name) fs)
        benches

let fmt_rate = function
  | None -> ""
  | Some r when r >= 1e6 -> Printf.sprintf "%.1fM" (r /. 1e6)
  | Some r when r >= 1e3 -> Printf.sprintf "%.1fk" (r /. 1e3)
  | Some r -> Printf.sprintf "%.0f" r

let rate count wall_s =
  Option.map (fun c -> Registry.per_s c wall_s) count

let print_table rows =
  let open Registry in
  Printf.printf "\n%-9s %-16s %-12s %10s %12s %10s  %s\n" "bench" "workload"
    "param" "wall_s" "g.atoms/s" "models/s" "note";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun (bname, r) ->
      Printf.printf "%-9s %-16s %-12s %10.4f %12s %10s  %s\n" bname
        r.r_workload r.r_param r.r_wall_s
        (fmt_rate (rate r.r_ground_atoms r.r_wall_s))
        (fmt_rate (rate r.r_models r.r_wall_s))
        r.r_note)
    rows

let emit_rows_json path mode rows =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"bench\": \"unified-driver\",\n  \"mode\": %S,\n  \"rows\": [\n" mode;
  List.iteri
    (fun i (bname, (r : Registry.row)) ->
      let opt_rate c =
        match rate c r.Registry.r_wall_s with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null"
      in
      let opt_int = function Some v -> string_of_int v | None -> "null" in
      p
        "    {\"bench\": %S, \"workload\": %S, \"param\": %S, \"wall_s\": \
         %.6f, \"ground_atoms\": %s, \"ground_atoms_per_s\": %s, \"models\": \
         %s, \"models_per_s\": %s, \"note\": %S}%s\n"
        bname r.Registry.r_workload r.Registry.r_param r.Registry.r_wall_s
        (opt_int r.Registry.r_ground_atoms)
        (opt_rate r.Registry.r_ground_atoms)
        (opt_int r.Registry.r_models)
        (opt_rate r.Registry.r_models)
        r.Registry.r_note
        (if i = List.length rows - 1 then "" else ",")
      )
    rows;
  p "  ]\n}\n";
  close_out oc;
  Printf.eprintf "wrote %s\n" path

let () =
  let o = parse_args () in
  if o.list then begin
    List.iter
      (fun (b : Registry.bench) ->
        Printf.printf "%-9s %s (full run -> %s)\n" b.Registry.name
          b.Registry.descr b.Registry.default_out)
      benches;
    exit 0
  end;
  let picked = selected o in
  if picked = [] then begin
    Printf.eprintf "no bench matches the filter\n";
    usage ()
  end;
  (match (o.out, picked) with
  | Some _, _ :: _ :: _ ->
      Printf.eprintf "--out needs a filter selecting exactly one bench\n";
      usage ()
  | _ -> ());
  let rows =
    List.concat_map
      (fun (b : Registry.bench) ->
        Printf.eprintf "== %s ==\n%!" b.Registry.name;
        let out = Option.value ~default:b.Registry.default_out o.out in
        List.map (fun r -> (b.Registry.name, r)) (b.Registry.run ~smoke:o.smoke ~out))
      picked
  in
  print_table rows;
  Option.iter
    (fun path -> emit_rows_json path (if o.smoke then "smoke" else "full") rows)
    o.json
