(* Grounder scaling sweep: the production grounding path (Asp.Grounder —
   semi-naive fixpoint, rule indexing, first-argument discrimination,
   incremental extend) against the retained naive oracle
   (Asp.Naive_ground — ground-everything-every-pass fixpoint with linear
   signature scans), on three workload shapes:

   - tc n:       transitive closure over an n-node chain (O(n²) ground
                 rules, O(n) fixpoint rounds). The oracle re-joins the
                 whole path relation against the whole edge relation every
                 pass; the semi-naive grounder only joins the atoms the
                 previous round produced, probed through the first-arg
                 index.
   - tank h:     the water-tank temporal encoding at horizon h — the
                 paper's actual workload shape (time-indexed fluents,
                 choices, aggregates, weak constraints).
   - extend k:   k scenario deltas against one prepared water-tank base:
                 Grounder.prepare once + Grounder.extend per delta, vs
                 grounding base+delta from scratch per delta. The sweep
                 engine's per-job grounding path.

   Every timed run is checked against its reference (Ground.equal for
   one-shot parity; set-equality on rules plus exact universe/show
   agreement for extend, which may keep duplicate ground rules two source
   rules share). Emits JSON (committed as BENCH_ground.json at the repo
   root for the full sweep; `dune build @ground-smoke` runs a
   seconds-scale subset as part of the test tree). *)

let time ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

type entry = {
  workload : string;
  param : int;
  atoms : int;
  grules : int;
  new_s : float;
  oracle_s : float option; (* None above the oracle's budget *)
  stats : Asp.Grounder.Stats.t;
}

let run_oneshot ~reps ~oracle_cap name param program =
  let stats = Asp.Grounder.Stats.create () in
  let g, new_s = time ~reps (fun () -> Asp.Grounder.ground ~stats program) in
  let oracle_s =
    if param <= oracle_cap then begin
      let og, dt = time ~reps (fun () -> Asp.Naive_ground.ground program) in
      (* the sweep doubles as a differential check *)
      if not (Asp.Ground.equal g og) then begin
        Printf.eprintf "grounder/oracle disagree on %s %d\n" name param;
        exit 2
      end;
      Some dt
    end
    else None
  in
  Printf.eprintf "  %s %3d: grounder %8.4fs%s, %d rules / %d atoms\n%!" name
    param new_s
    (match oracle_s with
    | Some t -> Printf.sprintf ", oracle %8.4fs (%.1fx)" t (t /. new_s)
    | None -> ", oracle skipped")
    (Asp.Ground.rule_count g) (Asp.Ground.atom_count g);
  {
    workload = name;
    param;
    atoms = Asp.Ground.atom_count g;
    grules = Asp.Ground.rule_count g;
    new_s;
    oracle_s;
    stats;
  }

(* k scenario deltas against one prepared water-tank base. The scratch
   reference uses the production grounder too — this row isolates the
   value of incremental extension itself, not of the semi-naive rewrite
   (the tank rows measure that). *)
let run_extend ~reps ~horizon k =
  let base = Cpsrisk.Water_tank.asp_base ~horizon () in
  let scenarios =
    List.map Cpsrisk.Sweeps.delta_scenario
      (Cpsrisk.Sweeps.random_deltas ~seed:7 k)
  in
  let deltas = List.map Cpsrisk.Water_tank.asp_activation_facts scenarios in
  let stats = Asp.Grounder.Stats.create () in
  let exts, ext_s =
    time ~reps (fun () ->
        let prep = Asp.Grounder.prepare ~stats base in
        List.map (Asp.Grounder.extend ~stats prep) deltas)
  in
  let scratch, scratch_s =
    time ~reps (fun () ->
        List.map (fun d -> Asp.Grounder.ground (Asp.Program.append base d)) deltas)
  in
  let canon (g : Asp.Ground.t) = List.sort_uniq compare g.Asp.Ground.rules in
  List.iter2
    (fun (e : Asp.Ground.t) (s : Asp.Ground.t) ->
      if
        not
          (Asp.Model.AtomSet.equal e.universe s.universe
          && e.shows = s.shows
          && canon e = canon s)
      then begin
        Printf.eprintf "extend/scratch disagree on tank extend %d\n" k;
        exit 2
      end)
    exts scratch;
  let total = Asp.Ground.atom_count (List.hd exts) in
  Printf.eprintf
    "  extend %3d: extend %8.4fs, scratch %8.4fs (%.1fx), reused %d / fresh \
     %d instances\n%!"
    k ext_s scratch_s (scratch_s /. ext_s)
    stats.Asp.Grounder.Stats.reused_rules stats.Asp.Grounder.Stats.fresh_rules;
  {
    workload = "extend";
    param = k;
    atoms = total;
    grules = Asp.Ground.rule_count (List.hd exts);
    new_s = ext_s;
    oracle_s = Some scratch_s;
    stats;
  }

let emit_json out mode entries =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"asp-grounder-scaling\",\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"reference\": \"Asp.Naive_ground (naive fixpoint, linear signature \
     scans); extend rows reference fresh base+delta grounding\",\n";
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      let s = e.stats in
      p
        "    {\"workload\": %S, \"param\": %d, \"ground_atoms\": %d, \
         \"ground_rules\": %d,\n\
        \     \"grounder_s\": %.6f, \"reference_s\": %s, \"speedup\": %s,\n\
        \     \"stats\": {\"passes\": %d, \"firings\": %d, \"probes\": %d, \
         \"fresh_rules\": %d, \"reused_rules\": %d}}%s\n"
        e.workload e.param e.atoms e.grules e.new_s
        (match e.oracle_s with
        | Some t -> Printf.sprintf "%.6f" t
        | None -> "null")
        (match e.oracle_s with
        | Some t -> Printf.sprintf "%.2f" (t /. e.new_s)
        | None -> "null")
        s.Asp.Grounder.Stats.passes s.Asp.Grounder.Stats.firings
        s.Asp.Grounder.Stats.probes s.Asp.Grounder.Stats.fresh_rules
        s.Asp.Grounder.Stats.reused_rules
        (if i = List.length entries - 1 then "" else ",");
      ())
    entries;
  p "  ]\n}\n";
  close_out oc

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out = ref "BENCH_ground.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1))
    Sys.argv;
  let reps = if smoke then 1 else 3 in
  (* tc: the oracle is O(rounds × |path| × |edge|) ≈ O(n⁴); capped where it
     still finishes inside the bench budget *)
  let tc_ns = if smoke then [ 20; 40 ] else [ 20; 40; 80; 120; 200 ] in
  let tc_oracle_cap = if smoke then 40 else 120 in
  let tank_hs = if smoke then [ 6 ] else [ 6; 12; 24; 48 ] in
  let tank_oracle_cap = if smoke then 6 else 48 in
  let extend_ks = if smoke then [ 8 ] else [ 16; 64 ] in
  let entries =
    List.map
      (fun n ->
        run_oneshot ~reps ~oracle_cap:tc_oracle_cap "tc" n
          (Cpsrisk.Cascade.asp_chain_program n))
      tc_ns
    @ List.map
        (fun h ->
          run_oneshot ~reps ~oracle_cap:tank_oracle_cap "tank" h
            (Cpsrisk.Water_tank.asp_program ~horizon:h
               ~scenario:(Epa.Scenario.make [])
               ()))
        tank_hs
    @ List.map (fun k -> run_extend ~reps ~horizon:12 k) extend_ks
  in
  emit_json !out (if smoke then "smoke" else "full") entries;
  Printf.eprintf "wrote %s\n" !out
