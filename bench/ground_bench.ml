(* Grounder scaling sweep: the production grounding path (Asp.Grounder —
   semi-naive fixpoint with snapshot rounds, hash-consed terms,
   multi-position/composite/range discrimination indexes, incremental
   extend) against the retained naive oracle (Asp.Naive_ground —
   ground-everything-every-pass fixpoint with linear signature scans), on
   four workload shapes:

   - tc n:        transitive closure over an n-node chain (O(n²) ground
                  rules, O(n) fixpoint rounds). The oracle re-joins the
                  whole path relation against the whole edge relation
                  every pass; the semi-naive grounder only joins the atoms
                  the previous round produced, probed through the
                  discrimination indexes.
   - tank h:      the water-tank temporal encoding at horizon h — the
                  paper's actual workload shape (time-indexed fluents,
                  choices, aggregates, weak constraints).
   - extend k:    k scenario deltas against one prepared water-tank base:
                  Grounder.prepare once + Grounder.extend per delta, vs
                  grounding base+delta from scratch per delta. The sweep
                  engine's per-job grounding path.
   - tc-extend k: k chain-growth deltas against one prepared tc base —
                  the reuse counters must show the base's O(n²) instances
                  carried over instead of re-derived.

   Every timed run is checked against its reference (Ground.equal for
   one-shot parity; set-equality on rules plus exact universe/show
   agreement for extend, which may keep duplicate ground rules two source
   rules share). Two regression guards exit 2:

   - never-slower: wherever the oracle runs, the production grounder must
     beat it (tolerance below) — and extend must beat scratch regrounding;
   - probe efficiency: probes/firings must stay under a per-workload
     budget, so an index regression (e.g. losing the composite or range
     tier and falling back to signature scans) fails the bench even if
     the machine is fast enough to hide it in wall-clock.

   Emits JSON (committed as BENCH_ground.json at the repo root for the
   full sweep; `dune build @ground-smoke` runs a seconds-scale subset as
   part of the test tree). *)

let time = Registry.time

type entry = {
  workload : string;
  param : int;
  atoms : int;
  grules : int;
  new_s : float;
  oracle_s : float option; (* None above the oracle's budget *)
  stats : Asp.Grounder.Stats.t;
}

(* never-slower tolerance; only enforced where the reference is large
   enough to time reliably *)
let tolerance = 1.25
let min_reliable_s = 0.010

let check_never_slower ~what ~param ~ref_s ~new_s =
  match ref_s with
  | Some r when r >= min_reliable_s && new_s > r *. tolerance ->
      Printf.eprintf
        "ground_bench: %s %d grounder %.4fs slower than reference %.4fs x %.2f\n"
        what param new_s r tolerance;
      exit 2
  | _ -> ()

(* probe-efficiency guard: index probes per instance the grounder either
   fired or proved reusable (reused instances are validated by probing
   without re-firing, so they belong in the denominator — otherwise the
   ratio grows with base size on the extend workloads even when every
   probe is useful). A probe that lands in a discrimination bucket
   enumerates only candidates sharing the key, so healthy workloads stay
   within a small constant; losing an index tier degrades probes to
   signature scans whose cost explodes with no probe-count change —
   which is why the ratio is bounded per workload rather than globally,
   with the join-heavy shapes given tighter budgets. *)
let probe_budget =
  [ ("tc", 4.0); ("tank", 10.0); ("extend", 8.0); ("tc-extend", 3.0) ]

let check_probe_efficiency ~workload ~param (s : Asp.Grounder.Stats.t) =
  match List.assoc_opt workload probe_budget with
  | None -> ()
  | Some budget ->
      let touched =
        s.Asp.Grounder.Stats.firings + s.Asp.Grounder.Stats.reused_rules
      in
      let ratio =
        float_of_int s.Asp.Grounder.Stats.probes /. float_of_int (max 1 touched)
      in
      if ratio > budget then begin
        Printf.eprintf
          "ground_bench: %s %d probe efficiency regressed: %d probes / %d \
           fired+reused = %.2f > budget %.2f\n"
          workload param s.Asp.Grounder.Stats.probes touched ratio budget;
        exit 2
      end

let run_oneshot ~reps ~oracle_cap name param program =
  let stats = Asp.Grounder.Stats.create () in
  let g, new_s = time ~reps (fun () -> Asp.Grounder.ground ~stats program) in
  let oracle_s =
    if param <= oracle_cap then begin
      let og, dt = time ~reps (fun () -> Asp.Naive_ground.ground program) in
      (* the sweep doubles as a differential check *)
      if not (Asp.Ground.equal g og) then begin
        Printf.eprintf "grounder/oracle disagree on %s %d\n" name param;
        exit 2
      end;
      Some dt
    end
    else None
  in
  Printf.eprintf "  %s %3d: grounder %8.4fs%s, %d rules / %d atoms\n%!" name
    param new_s
    (match oracle_s with
    | Some t -> Printf.sprintf ", oracle %8.4fs (%.1fx)" t (t /. new_s)
    | None -> ", oracle skipped")
    (Asp.Ground.rule_count g) (Asp.Ground.atom_count g);
  check_never_slower ~what:name ~param ~ref_s:oracle_s ~new_s;
  check_probe_efficiency ~workload:name ~param stats;
  {
    workload = name;
    param;
    atoms = Asp.Ground.atom_count g;
    grules = Asp.Ground.rule_count g;
    new_s;
    oracle_s;
    stats;
  }

(* k deltas against one prepared base. The scratch reference uses the
   production grounder too — these rows isolate the value of incremental
   extension itself, not of the semi-naive rewrite (the one-shot rows
   measure that). The extend stats (including the reuse counters that
   prove instances were carried, not re-derived) are threaded into the
   emitted row. *)
let run_extend ~reps name k ~base ~deltas =
  let stats = Asp.Grounder.Stats.create () in
  let exts, ext_s =
    time ~reps (fun () ->
        let prep = Asp.Grounder.prepare ~stats base in
        List.map (Asp.Grounder.extend ~stats prep) deltas)
  in
  let scratch, scratch_s =
    time ~reps (fun () ->
        List.map (fun d -> Asp.Grounder.ground (Asp.Program.append base d)) deltas)
  in
  let canon (g : Asp.Ground.t) = List.sort_uniq compare g.Asp.Ground.rules in
  List.iter2
    (fun (e : Asp.Ground.t) (s : Asp.Ground.t) ->
      if
        not
          (Asp.Model.AtomSet.equal e.universe s.universe
          && e.shows = s.shows
          && canon e = canon s)
      then begin
        Printf.eprintf "extend/scratch disagree on %s %d\n" name k;
        exit 2
      end)
    exts scratch;
  Printf.eprintf
    "  %s %3d: extend %8.4fs, scratch %8.4fs (%.1fx), reused %d / fresh \
     %d instances\n%!"
    name k ext_s scratch_s (scratch_s /. ext_s)
    stats.Asp.Grounder.Stats.reused_rules stats.Asp.Grounder.Stats.fresh_rules;
  check_never_slower ~what:name ~param:k ~ref_s:(Some scratch_s) ~new_s:ext_s;
  check_probe_efficiency ~workload:name ~param:k stats;
  if stats.Asp.Grounder.Stats.reused_rules = 0 then begin
    (* the reuse counters are the row's whole point: a zero here means the
       extend path re-derived everything (or the counters came unwired) *)
    Printf.eprintf "ground_bench: %s %d shows no reused instances\n" name k;
    exit 2
  end;
  {
    workload = name;
    param = k;
    atoms = Asp.Ground.atom_count (List.hd exts);
    grules = Asp.Ground.rule_count (List.hd exts);
    new_s = ext_s;
    oracle_s = Some scratch_s;
    stats;
  }

let run_extend_tank ~reps ~horizon k =
  let base = Cpsrisk.Water_tank.asp_base ~horizon () in
  let scenarios =
    List.map Cpsrisk.Sweeps.delta_scenario
      (Cpsrisk.Sweeps.random_deltas ~seed:7 k)
  in
  let deltas = List.map Cpsrisk.Water_tank.asp_activation_facts scenarios in
  run_extend ~reps "extend" k ~base ~deltas

(* chain growth: each delta appends a two-edge tail to the n-node chain;
   the base's O(n²) path instances must be reused, only paths reaching
   the new nodes are fresh *)
let run_extend_tc ~reps ~n k =
  let base = Cpsrisk.Cascade.asp_chain_program n in
  let deltas =
    List.init k (fun i ->
        Asp.Parser.parse_program
          (Printf.sprintf "edge(n%d, x%d_1). edge(x%d_1, x%d_2)." (n - 1) i i i))
  in
  run_extend ~reps "tc-extend" k ~base ~deltas

let emit_json out mode entries =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"asp-grounder-scaling\",\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"reference\": \"Asp.Naive_ground (naive fixpoint, linear signature \
     scans); extend rows reference fresh base+delta grounding\",\n";
  p "  \"guards\": {\"never_slower_tolerance\": %.2f, \"min_reliable_s\": \
     %.3f, \"probe_budget\": {%s}},\n"
    tolerance min_reliable_s
    (String.concat ", "
       (List.map
          (fun (w, b) -> Printf.sprintf "%S: %.1f" w b)
          probe_budget));
  p "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      let s = e.stats in
      p
        "    {\"workload\": %S, \"param\": %d, \"ground_atoms\": %d, \
         \"ground_rules\": %d,\n\
        \     \"grounder_s\": %.6f, \"reference_s\": %s, \"speedup\": %s,\n\
        \     \"stats\": {\"passes\": %d, \"firings\": %d, \"probes\": %d, \
         \"probes_per_touched\": %.3f, \"fresh_rules\": %d, \"reused_rules\": \
         %d}}%s\n"
        e.workload e.param e.atoms e.grules e.new_s
        (match e.oracle_s with
        | Some t -> Printf.sprintf "%.6f" t
        | None -> "null")
        (match e.oracle_s with
        | Some t -> Printf.sprintf "%.2f" (t /. e.new_s)
        | None -> "null")
        s.Asp.Grounder.Stats.passes s.Asp.Grounder.Stats.firings
        s.Asp.Grounder.Stats.probes
        (float_of_int s.Asp.Grounder.Stats.probes
        /. float_of_int
             (max 1
                (s.Asp.Grounder.Stats.firings
               + s.Asp.Grounder.Stats.reused_rules)))
        s.Asp.Grounder.Stats.fresh_rules s.Asp.Grounder.Stats.reused_rules
        (if i = List.length entries - 1 then "" else ",");
      ())
    entries;
  p "  ]\n}\n";
  close_out oc

let run ~smoke ~out =
  let reps = if smoke then 1 else 3 in
  (* tc: the oracle is O(rounds × |path| × |edge|) ≈ O(n⁴); capped where it
     still finishes inside the bench budget *)
  let tc_ns = if smoke then [ 20; 40 ] else [ 20; 40; 80; 120; 200 ] in
  let tc_oracle_cap = if smoke then 40 else 120 in
  let tank_hs = if smoke then [ 6 ] else [ 6; 12; 24; 48 ] in
  let tank_oracle_cap = if smoke then 6 else 48 in
  let extend_ks = if smoke then [ 8 ] else [ 16; 64 ] in
  let tc_extend =
    if smoke then [ (40, 8) ] else [ (80, 16); (120, 16) ]
  in
  let entries =
    List.map
      (fun n ->
        run_oneshot ~reps ~oracle_cap:tc_oracle_cap "tc" n
          (Cpsrisk.Cascade.asp_chain_program n))
      tc_ns
    @ List.map
        (fun h ->
          run_oneshot ~reps ~oracle_cap:tank_oracle_cap "tank" h
            (Cpsrisk.Water_tank.asp_program ~horizon:h
               ~scenario:(Epa.Scenario.make [])
               ()))
        tank_hs
    @ List.map (fun k -> run_extend_tank ~reps ~horizon:12 k) extend_ks
    @ List.map (fun (n, k) -> run_extend_tc ~reps ~n k) tc_extend
  in
  emit_json out (if smoke then "smoke" else "full") entries;
  Printf.eprintf "wrote %s\n" out;
  List.map
    (fun e ->
      Registry.row ~ground_atoms:e.atoms
        ~note:
          (match e.oracle_s with
          | Some t -> Printf.sprintf "%.1fx reference" (t /. e.new_s)
          | None -> "reference skipped")
        ~param:(string_of_int e.param) e.workload e.new_s)
    entries

let bench =
  {
    Registry.name = "ground";
    descr = "grounder scaling vs naive oracle; probe + never-slower guards";
    default_out = "BENCH_ground.json";
    run;
  }
