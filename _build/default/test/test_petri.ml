(* Tests for the Petri-net baseline (lib/petri). *)

let check = Alcotest.check
let fail = Alcotest.fail

let marking_t =
  Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)

(* Producer/consumer through a 1-slot buffer. *)
let buffer_net =
  Petri.Net.make
    ~places:[ "idle"; "ready"; "buffer"; "consumed" ]
    ~transitions:[ "produce"; "consume" ]
    ~arcs:
      [
        ("idle", "produce", 1);
        ("produce", "ready", 1);
        ("ready", "consume", 1);
        ("buffer", "consume", 1);
        ("consume", "consumed", 1);
      ]

let test_make_validation () =
  (match
     Petri.Net.make ~places:[ "p" ] ~transitions:[ "t" ]
       ~arcs:[ ("p", "ghost", 1) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown endpoint accepted");
  (match
     Petri.Net.make ~places:[ "p"; "q" ] ~transitions:[ "t" ]
       ~arcs:[ ("p", "q", 1) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "place-place arc accepted");
  (match
     Petri.Net.make ~places:[ "p" ] ~transitions:[ "t" ] ~arcs:[ ("p", "t", 0) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero weight accepted");
  match Petri.Net.make ~places:[ "x" ] ~transitions:[ "x" ] ~arcs:[] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "shared name accepted"

let test_enabled_and_fire () =
  let m0 = [ ("idle", 1); ("buffer", 1) ] in
  check (Alcotest.list Alcotest.string) "only produce" [ "produce" ]
    (Petri.Net.enabled buffer_net m0);
  let m1 = Petri.Net.fire buffer_net m0 "produce" in
  check marking_t "after produce" [ ("buffer", 1); ("ready", 1) ]
    (Petri.Net.normalize buffer_net m1);
  let m2 = Petri.Net.fire buffer_net m1 "consume" in
  check marking_t "after consume" [ ("consumed", 1) ]
    (Petri.Net.normalize buffer_net m2);
  match Petri.Net.fire buffer_net m2 "produce" with
  | exception Invalid_argument _ -> ()
  | _ -> fail "firing disabled transition accepted"

let test_normalize () =
  let m = Petri.Net.normalize buffer_net [ ("idle", 1); ("idle", 2); ("ready", 0) ] in
  check marking_t "summed and pruned" [ ("idle", 3) ] m;
  match Petri.Net.normalize buffer_net [ ("idle", -1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "negative tokens accepted"

let test_reachability_graph () =
  let g =
    Petri.Net.reachability buffer_net ~initial:[ ("idle", 1); ("buffer", 1) ]
  in
  (* m0 -> m1 -> m2, linear *)
  check Alcotest.int "three markings" 3 (List.length g.Petri.Net.markings);
  check Alcotest.int "two edges" 2 (List.length g.Petri.Net.edges);
  check Alcotest.bool "complete" true g.Petri.Net.complete

let test_deadlocks () =
  let dead =
    Petri.Net.deadlocks buffer_net ~initial:[ ("idle", 1); ("buffer", 1) ]
  in
  check (Alcotest.list marking_t) "final marking is the deadlock"
    [ [ ("consumed", 1) ] ]
    dead

let test_boundedness () =
  check Alcotest.bool "buffer net is safe" true
    (Petri.Net.bounded buffer_net ~initial:[ ("idle", 1); ("buffer", 1) ]);
  (* an unbounded producer: t makes tokens from nothing *)
  let unbounded =
    Petri.Net.make ~places:[ "p" ] ~transitions:[ "t" ] ~arcs:[ ("t", "p", 1) ]
  in
  check Alcotest.bool "detected unbounded" false
    (Petri.Net.bounded ~max_markings:50 unbounded ~initial:[])

let test_weighted_arcs () =
  (* t needs 2 tokens and produces 3 *)
  let net =
    Petri.Net.make ~places:[ "a"; "b" ] ~transitions:[ "t" ]
      ~arcs:[ ("a", "t", 2); ("t", "b", 3) ]
  in
  check (Alcotest.list Alcotest.string) "not enabled with 1" []
    (Petri.Net.enabled net [ ("a", 1) ]);
  let m = Petri.Net.fire net [ ("a", 2) ] "t" in
  check Alcotest.int "3 produced" 3 (Petri.Net.tokens m "b")

(* an error-propagation net in the §III.A style: a fault token propagates
   from the IT zone through the controller into the physical asset *)
let propagation_net =
  Petri.Net.make
    ~places:[ "fault_it"; "fault_ctrl"; "fault_phys"; "guard" ]
    ~transitions:[ "spread_ctrl"; "spread_phys" ]
    ~arcs:
      [
        ("fault_it", "spread_ctrl", 1);
        ("spread_ctrl", "fault_ctrl", 1);
        ("fault_ctrl", "spread_phys", 1);
        ("guard", "spread_phys", 1);
        ("spread_phys", "fault_phys", 1);
      ]

let test_propagation_scenario () =
  (* with the guard token (no mitigation) the physical fault is reachable *)
  let hazard m = Petri.Net.tokens m "fault_phys" > 0 in
  (match
     Petri.Net.reachable_with propagation_net
       ~initial:[ ("fault_it", 1); ("guard", 1) ]
       ~pred:hazard
   with
  | Some _ -> ()
  | None -> fail "expected the hazard marking to be reachable");
  (* removing the guard token (mitigation active) blocks the propagation *)
  match
    Petri.Net.reachable_with propagation_net ~initial:[ ("fault_it", 1) ]
      ~pred:hazard
  with
  | None -> ()
  | Some _ -> fail "mitigated net should not reach the hazard"

let prop_firing_preserves_validity =
  QCheck.Test.make ~name:"petri: firing any enabled sequence stays valid"
    ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) (int_range 0 1)))
    (fun choices ->
      let rec run m = function
        | [] -> true
        | c :: rest -> (
            match Petri.Net.enabled buffer_net m with
            | [] -> true
            | ts ->
                let t = List.nth ts (c mod List.length ts) in
                let m' = Petri.Net.fire buffer_net m t in
                List.for_all (fun (_, n) -> n >= 0) m' && run m' rest)
      in
      run [ ("idle", 1); ("buffer", 1) ] choices)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "petri.net",
      [
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "enabled & fire" `Quick test_enabled_and_fire;
        Alcotest.test_case "normalize" `Quick test_normalize;
        Alcotest.test_case "reachability" `Quick test_reachability_graph;
        Alcotest.test_case "deadlocks" `Quick test_deadlocks;
        Alcotest.test_case "boundedness" `Quick test_boundedness;
        Alcotest.test_case "weighted arcs" `Quick test_weighted_arcs;
        Alcotest.test_case "propagation scenario" `Quick
          test_propagation_scenario;
        qcheck prop_firing_preserves_validity;
      ] );
  ]
