(* Tests for Rough Set Theory (lib/rough) and its risk-uncertainty bridge. *)

let check = Alcotest.check
let fail = Alcotest.fail

let level_testable = Alcotest.testable Qual.Level.pp Qual.Level.equal
let lvl s = Option.get (Qual.Level.of_string s)
let sl = Alcotest.list Alcotest.string

(* The classic flu example (Pawlak-style): symptoms vs diagnosis.
   p1/p2 share symptoms but differ in decision -> boundary region. *)
let flu =
  Rough.Infosys.of_table
    ~attributes:[ "headache"; "temp"; "flu" ]
    [
      ("p1", [ "yes"; "high"; "yes" ]);
      ("p2", [ "yes"; "high"; "no" ]);
      ("p3", [ "no"; "normal"; "no" ]);
      ("p4", [ "no"; "high"; "yes" ]);
      ("p5", [ "no"; "normal"; "no" ]);
      ("p6", [ "yes"; "normal"; "no" ]);
    ]

let conditions = Rough.Infosys.restrict_attributes [ "headache"; "temp" ] flu
let flu_yes = [ "p1"; "p4" ]

(* -------------------------------------------------------------------- *)
(* Infosys                                                               *)
(* -------------------------------------------------------------------- *)

let test_infosys_basics () =
  check Alcotest.int "objects" 6 (List.length (Rough.Infosys.objects flu));
  check Alcotest.string "value" "high" (Rough.Infosys.value flu "p1" "temp");
  match Rough.Infosys.value flu "p1" "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown attribute accepted"

let test_infosys_validation () =
  (match
     Rough.Infosys.of_table ~attributes:[ "a" ] [ ("x", [ "1"; "2" ]) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "arity mismatch accepted");
  match
    Rough.Infosys.of_table ~attributes:[ "a" ] [ ("x", [ "1" ]); ("x", [ "2" ]) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "duplicate object accepted"

(* -------------------------------------------------------------------- *)
(* Approximations                                                        *)
(* -------------------------------------------------------------------- *)

let test_indiscernibility () =
  let classes = Rough.Approx.indiscernibility conditions in
  check Alcotest.int "four classes" 4 (List.length classes);
  check Alcotest.bool "p1 p2 together" true
    (List.exists (fun c -> c = [ "p1"; "p2" ]) classes);
  check Alcotest.bool "p3 p5 together" true
    (List.exists (fun c -> c = [ "p3"; "p5" ]) classes)

let test_lower_upper () =
  check sl "lower" [ "p4" ] (Rough.Approx.lower conditions flu_yes);
  check sl "upper" [ "p1"; "p2"; "p4" ] (Rough.Approx.upper conditions flu_yes)

let test_regions () =
  let r = Rough.Approx.regions conditions flu_yes in
  check sl "positive" [ "p4" ] r.Rough.Approx.positive;
  check sl "boundary" [ "p1"; "p2" ] r.Rough.Approx.boundary;
  check sl "negative" [ "p3"; "p5"; "p6" ] r.Rough.Approx.negative

let test_accuracy () =
  check (Alcotest.float 0.0001) "1/3" (1. /. 3.)
    (Rough.Approx.accuracy conditions flu_yes);
  check Alcotest.bool "not crisp" false (Rough.Approx.is_crisp conditions flu_yes);
  (* a definable set is crisp *)
  check Alcotest.bool "definable set crisp" true
    (Rough.Approx.is_crisp conditions [ "p3"; "p5" ]);
  check (Alcotest.float 0.0001) "empty set accuracy" 1.0
    (Rough.Approx.accuracy conditions [])

let test_dependency_degree () =
  (* positive region of the decision partition: all but p1, p2 -> 4/6 *)
  check (Alcotest.float 0.0001) "gamma" (4. /. 6.)
    (Rough.Approx.dependency_degree ~decision:"flu" flu)

let prop_lower_subset_upper =
  let gen =
    QCheck.Gen.(
      map
        (fun mask ->
          List.filteri (fun i _ -> List.nth mask (i mod List.length mask))
            [ "p1"; "p2"; "p3"; "p4"; "p5"; "p6" ])
        (list_size (int_range 1 6) bool))
  in
  QCheck.Test.make ~name:"rough: lower ⊆ target ⊆ upper (within universe)"
    ~count:200 (QCheck.make gen)
    (fun target ->
      let lo = Rough.Approx.lower conditions target in
      let up = Rough.Approx.upper conditions target in
      List.for_all (fun o -> List.mem o target) lo
      && List.for_all (fun o -> List.mem o up) target)

let prop_regions_partition =
  let gen =
    QCheck.Gen.(
      map
        (fun mask ->
          List.filteri (fun i _ -> List.nth mask (i mod List.length mask))
            [ "p1"; "p2"; "p3"; "p4"; "p5"; "p6" ])
        (list_size (int_range 1 6) bool))
  in
  QCheck.Test.make ~name:"rough: regions partition the universe" ~count:200
    (QCheck.make gen)
    (fun target ->
      let r = Rough.Approx.regions conditions target in
      let all =
        List.sort String.compare
          (r.Rough.Approx.positive @ r.Rough.Approx.boundary
         @ r.Rough.Approx.negative)
      in
      all = List.sort String.compare (Rough.Infosys.objects conditions))

(* -------------------------------------------------------------------- *)
(* Reducts and rules                                                     *)
(* -------------------------------------------------------------------- *)

let test_reducts () =
  let reducts = Rough.Reduct.reducts ~decision:"flu" flu in
  (* both attributes are needed: the only reduct is {headache, temp} *)
  check
    (Alcotest.list sl)
    "single full reduct"
    [ [ "headache"; "temp" ] ]
    reducts;
  check sl "core = both" [ "headache"; "temp" ]
    (Rough.Reduct.core ~decision:"flu" flu)

let test_reducts_redundant_attribute () =
  (* add a constant attribute: it should drop out of every reduct *)
  let sys =
    Rough.Infosys.of_table
      ~attributes:[ "headache"; "temp"; "noise"; "flu" ]
      [
        ("p1", [ "yes"; "high"; "k"; "yes" ]);
        ("p3", [ "no"; "normal"; "k"; "no" ]);
        ("p4", [ "no"; "high"; "k"; "yes" ]);
        ("p6", [ "yes"; "normal"; "k"; "no" ]);
      ]
  in
  let reducts = Rough.Reduct.reducts ~decision:"flu" sys in
  check Alcotest.bool "noise not in any reduct" true
    (List.for_all (fun r -> not (List.mem "noise" r)) reducts);
  (* temp alone decides: {temp} is a reduct *)
  check Alcotest.bool "temp alone suffices" true
    (List.mem [ "temp" ] reducts)

let test_rule_induction () =
  let rules = Rough.Reduct.induce_rules ~decision:"flu" flu in
  let certain = List.filter (fun r -> r.Rough.Reduct.certain) rules in
  let possible = List.filter (fun r -> not r.Rough.Reduct.certain) rules in
  (* 3 consistent classes -> 3 certain rules; 1 inconsistent class (p1,p2)
     -> 2 possible rules *)
  check Alcotest.int "certain rules" 3 (List.length certain);
  check Alcotest.int "possible rules" 2 (List.length possible);
  check Alcotest.bool "possible rules mention both outcomes" true
    (List.exists (fun r -> snd r.Rough.Reduct.decision = "yes") possible
    && List.exists (fun r -> snd r.Rough.Reduct.decision = "no") possible)

(* -------------------------------------------------------------------- *)
(* Risk bridge (§V.A example)                                            *)
(* -------------------------------------------------------------------- *)

let test_bridge_paper_insensitive_case () =
  (* LEF = L known; LM uncertain in {VL, L}: risk stays VL -> not sensitive *)
  let u = { Rough.Risk_bridge.lm = [ lvl "VL"; lvl "L" ]; lef = [ lvl "L" ] } in
  check (Alcotest.list level_testable) "single outcome" [ lvl "VL" ]
    (Rough.Risk_bridge.possible_risks u);
  check Alcotest.bool "not sensitive" false (Rough.Risk_bridge.is_sensitive u);
  check (Alcotest.option level_testable) "certain" (Some (lvl "VL"))
    (Rough.Risk_bridge.certain_risk u)

let test_bridge_paper_sensitive_case () =
  (* LM ranging L..VH with LEF = L: output varies -> sensitive *)
  let u =
    {
      Rough.Risk_bridge.lm = [ lvl "L"; lvl "M"; lvl "H"; lvl "VH" ];
      lef = [ lvl "L" ];
    }
  in
  check Alcotest.bool "sensitive" true (Rough.Risk_bridge.is_sensitive u);
  check (Alcotest.option level_testable) "no certain risk" None
    (Rough.Risk_bridge.certain_risk u);
  check (Alcotest.list level_testable) "outcomes VL..H"
    [ lvl "VL"; lvl "L"; lvl "M"; lvl "H" ]
    (Rough.Risk_bridge.possible_risks u)

let test_bridge_outcome_regions () =
  let u =
    { Rough.Risk_bridge.lm = [ lvl "L"; lvl "M" ]; lef = [ lvl "M" ] }
  in
  (* outcomes: (L,M)->L, (M,M)->M *)
  check Alcotest.bool "L possible" true
    (Rough.Risk_bridge.outcome_regions ~target:(lvl "L") u = `Possible);
  check Alcotest.bool "VH excluded" true
    (Rough.Risk_bridge.outcome_regions ~target:(lvl "VH") u = `Excluded);
  let exact = Rough.Risk_bridge.exact ~lm:(lvl "L") ~lef:(lvl "M") in
  check Alcotest.bool "exact is certain" true
    (Rough.Risk_bridge.outcome_regions ~target:(lvl "L") exact = `Certain)

let test_bridge_worlds_decision_system () =
  let u =
    { Rough.Risk_bridge.lm = [ lvl "L"; lvl "VH" ]; lef = [ lvl "M"; lvl "H" ] }
  in
  let sys = Rough.Risk_bridge.worlds u in
  check Alcotest.int "four worlds" 4 (List.length (Rough.Infosys.objects sys));
  (* knowing only LEF cannot decide the risk: dependency degree < 1 *)
  let partial = Rough.Infosys.restrict_attributes [ "lef"; "risk" ] sys in
  check Alcotest.bool "lef alone insufficient" true
    (Rough.Approx.dependency_degree ~decision:"risk" partial < 1.0);
  (* knowing both attributes decides the risk fully *)
  check (Alcotest.float 0.0001) "full attributes decide" 1.0
    (Rough.Approx.dependency_degree ~decision:"risk" sys)

let test_bridge_rejects_empty () =
  match
    Rough.Risk_bridge.possible_risks { Rough.Risk_bridge.lm = []; lef = [ lvl "L" ] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty possibility set accepted"

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "rough.infosys",
      [
        Alcotest.test_case "basics" `Quick test_infosys_basics;
        Alcotest.test_case "validation" `Quick test_infosys_validation;
      ] );
    ( "rough.approx",
      [
        Alcotest.test_case "indiscernibility" `Quick test_indiscernibility;
        Alcotest.test_case "lower/upper" `Quick test_lower_upper;
        Alcotest.test_case "three regions" `Quick test_regions;
        Alcotest.test_case "accuracy" `Quick test_accuracy;
        Alcotest.test_case "dependency degree" `Quick test_dependency_degree;
        qcheck prop_lower_subset_upper;
        qcheck prop_regions_partition;
      ] );
    ( "rough.reduct",
      [
        Alcotest.test_case "reducts & core" `Quick test_reducts;
        Alcotest.test_case "redundant attribute" `Quick
          test_reducts_redundant_attribute;
        Alcotest.test_case "rule induction" `Quick test_rule_induction;
      ] );
    ( "rough.risk_bridge",
      [
        Alcotest.test_case "paper insensitive case" `Quick
          test_bridge_paper_insensitive_case;
        Alcotest.test_case "paper sensitive case" `Quick
          test_bridge_paper_sensitive_case;
        Alcotest.test_case "outcome regions" `Quick test_bridge_outcome_regions;
        Alcotest.test_case "worlds decision system" `Quick
          test_bridge_worlds_decision_system;
        Alcotest.test_case "rejects empty" `Quick test_bridge_rejects_empty;
      ] );
  ]
