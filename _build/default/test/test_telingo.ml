(* Tests for the Telingo layer (lib/telingo): LTLf compiled to ASP must
   agree with the native finite-trace semantics. *)

let check = Alcotest.check
let fail = Alcotest.fail

let st bindings = Qual.Qstate.of_list bindings

let trace_of_levels levels =
  Ltl.Trace.of_list (List.map (fun l -> st [ ("level", l) ]) levels)

let parse = Ltl.Parser.parse

let test_atom_and_boolean () =
  let tr = trace_of_levels [ "normal"; "high" ] in
  check Alcotest.bool "atom true" true
    (Telingo.Compile.check_trace tr (parse "level=normal"));
  check Alcotest.bool "atom false" false
    (Telingo.Compile.check_trace tr (parse "level=high"));
  check Alcotest.bool "negation" true
    (Telingo.Compile.check_trace tr (parse "!level=high"));
  check Alcotest.bool "conjunction" true
    (Telingo.Compile.check_trace tr (parse "level=normal & X level=high"));
  check Alcotest.bool "implication" true
    (Telingo.Compile.check_trace tr (parse "level=high -> false"))

let test_temporal_operators () =
  let tr = trace_of_levels [ "low"; "normal"; "high"; "overflow" ] in
  check Alcotest.bool "eventually" true
    (Telingo.Compile.check_trace tr (parse "F level=overflow"));
  check Alcotest.bool "always fails" false
    (Telingo.Compile.check_trace tr (parse "G level=low"));
  check Alcotest.bool "until" true
    (Telingo.Compile.check_trace tr (parse "!level=overflow U level=high"));
  check Alcotest.bool "release" true
    (Telingo.Compile.check_trace tr (parse "level=high R !level=overflow"))

let test_next_at_boundary () =
  let tr = trace_of_levels [ "low" ] in
  check Alcotest.bool "strong next false on last" false
    (Telingo.Compile.check_trace tr (parse "X true"));
  check Alcotest.bool "weak next true on last" true
    (Telingo.Compile.check_trace tr (parse "WX false"))

let test_paper_requirements_compiled () =
  let mk level alert = st [ ("level", level); ("alert", alert) ] in
  let violating =
    Ltl.Trace.of_list
      [ mk "normal" "false"; mk "overflow" "false"; mk "overflow" "false" ]
  in
  let alerted =
    Ltl.Trace.of_list
      [ mk "normal" "false"; mk "overflow" "false"; mk "overflow" "true" ]
  in
  let r2 = parse "G (level=overflow -> F alert)" in
  check Alcotest.bool "R2 violated without alert" false
    (Telingo.Compile.check_trace violating r2);
  check Alcotest.bool "R2 holds with alert" true
    (Telingo.Compile.check_trace alerted r2)

let test_violated_rule () =
  let tr = trace_of_levels [ "normal"; "overflow" ] in
  let rules, root =
    Telingo.Compile.formula ~horizon:1 (parse "G !level=overflow")
  in
  let program =
    Asp.Program.append (Telingo.Compile.trace_facts tr) rules
    |> Asp.Program.add (Telingo.Compile.violated_rule ~requirement:"R1" ~root)
  in
  match Asp.Solver.solve (Asp.Grounder.ground program) with
  | [ m ] ->
      check Alcotest.bool "violated(r1) derived" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "violated(r1)"))
  | _ -> fail "expected one model"

let test_custom_encoding () =
  (* map the bare atom "alarm" onto a unary alarm/1 predicate *)
  let encode atom t =
    if atom = "alarm" then Asp.Lit.Pos (Asp.Atom.make "alarm" [ t ])
    else Telingo.Compile.default_encoding atom t
  in
  let rules, root = Telingo.Compile.formula ~encode ~horizon:2 (parse "F alarm") in
  let facts = Asp.Parser.parse_program "time(0..2). alarm(2)." in
  let program = Asp.Program.append facts rules in
  match Asp.Solver.solve (Asp.Grounder.ground program) with
  | [ m ] -> check Alcotest.bool "root holds" true (Asp.Model.holds m root)
  | _ -> fail "expected one model"

let test_generated_program_is_stratified () =
  let rules, _ =
    Telingo.Compile.formula ~horizon:3
      (parse "G ((a -> F b) & !(c U d))")
  in
  let program =
    Asp.Program.append (Asp.Parser.parse_program "time(0..3).") rules
  in
  check Alcotest.bool "stratified" true
    (Asp.Deps.stratified (Asp.Deps.of_program program))

(* the central property: ASP-compiled semantics == native LTLf semantics *)
let formula_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "level=low"; "level=normal"; "level=high"; "alert" ] in
  fix
    (fun self depth ->
      if depth <= 0 then map Ltl.Formula.atom atom
      else
        let sub = self (depth - 1) in
        frequency
          [
            (2, map Ltl.Formula.atom atom);
            (1, return Ltl.Formula.True);
            (1, return Ltl.Formula.False);
            (2, map Ltl.Formula.not_ sub);
            (2, map2 (fun a b -> Ltl.Formula.And (a, b)) sub sub);
            (2, map2 (fun a b -> Ltl.Formula.Or (a, b)) sub sub);
            (1, map2 Ltl.Formula.implies sub sub);
            (2, map Ltl.Formula.next sub);
            (1, map Ltl.Formula.wnext sub);
            (2, map Ltl.Formula.eventually sub);
            (2, map Ltl.Formula.always sub);
            (1, map2 Ltl.Formula.until sub sub);
            (1, map2 Ltl.Formula.release sub sub);
          ])
    3

let trace_gen =
  let open QCheck.Gen in
  let state =
    map2
      (fun level alert ->
        st [ ("level", level); ("alert", string_of_bool alert) ])
      (oneofl [ "low"; "normal"; "high" ])
      bool
  in
  map Ltl.Trace.of_list (list_size (int_range 1 5) state)

let prop_asp_agrees_with_native =
  QCheck.Test.make ~name:"telingo: ASP compilation = native LTLf semantics"
    ~count:300
    (QCheck.make
       ~print:(fun (f, tr) ->
         Printf.sprintf "%s on %d states" (Ltl.Formula.to_string f)
           (Ltl.Trace.length tr))
       (QCheck.Gen.pair formula_gen trace_gen))
    (fun (f, tr) ->
      Telingo.Compile.check_trace tr f = Ltl.Trace.eval tr f)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "telingo.compile",
      [
        Alcotest.test_case "atoms & booleans" `Quick test_atom_and_boolean;
        Alcotest.test_case "temporal operators" `Quick test_temporal_operators;
        Alcotest.test_case "next at boundary" `Quick test_next_at_boundary;
        Alcotest.test_case "paper requirements" `Quick
          test_paper_requirements_compiled;
        Alcotest.test_case "violated rule" `Quick test_violated_rule;
        Alcotest.test_case "custom encoding" `Quick test_custom_encoding;
        Alcotest.test_case "stratified output" `Quick
          test_generated_program_is_stratified;
        qcheck prop_asp_agrees_with_native;
      ] );
  ]
