(* Tests for the threat-knowledge layer (lib/threatdb), including golden
   CVSS v3.1 scores cross-checked against the FIRST reference calculator. *)

let check = Alcotest.check
let fail = Alcotest.fail

let base_of v =
  match Threatdb.Cvss.of_vector v with
  | Ok b -> b
  | Error e -> fail (Printf.sprintf "vector %s: %s" v e)

let score v = Threatdb.Cvss.base_score (base_of v)

(* -------------------------------------------------------------------- *)
(* CVSS golden values                                                    *)
(* -------------------------------------------------------------------- *)

let test_cvss_golden_base_scores () =
  let cases =
    [
      (* wormable network RCE *)
      ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8);
      (* scope-changing total compromise *)
      ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0);
      (* classic browser RCE with user interaction *)
      ("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H", 9.6);
      (* local privilege escalation *)
      ("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8);
      (* high attack complexity *)
      ("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.1);
      (* authenticated SQL injection (C:H/I:H) *)
      ("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:N", 8.1);
      (* information disclosure only *)
      ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", 5.3);
      (* no impact at all *)
      ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0);
      (* physical access low impact *)
      ("CVSS:3.1/AV:P/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", 2.4);
      (* adjacent DoS *)
      ("CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 6.5);
    ]
  in
  List.iter
    (fun (v, expected) ->
      check (Alcotest.float 0.001) v expected (score v))
    cases

let test_cvss_severity_bands () =
  let open Threatdb.Cvss in
  check Alcotest.string "0 none" "None" (severity_to_string (severity 0.));
  check Alcotest.string "3.9 low" "Low" (severity_to_string (severity 3.9));
  check Alcotest.string "4.0 medium" "Medium" (severity_to_string (severity 4.0));
  check Alcotest.string "8.9 high" "High" (severity_to_string (severity 8.9));
  check Alcotest.string "9.8 critical" "Critical"
    (severity_to_string (severity 9.8));
  check Alcotest.bool "critical is VH" true
    (Qual.Level.equal Qual.Level.Very_high (severity_to_level Critical))

let test_cvss_temporal () =
  let b = base_of "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H" in
  let open Threatdb.Cvss in
  (* all not-defined: temporal = base *)
  check (Alcotest.float 0.001) "ND temporal = base" 9.8
    (temporal_score b default_temporal);
  let t = { e = E_functional; rl = RL_official_fix; rc = RC_confirmed } in
  (* 9.8 * 0.97 * 0.95 = 9.0307 -> 9.1 *)
  check (Alcotest.float 0.001) "degraded temporal" 9.1 (temporal_score b t);
  check Alcotest.bool "temporal <= base" true (temporal_score b t <= base_score b)

let test_cvss_environmental_defaults () =
  (* with everything not-defined and scope unchanged, env = temporal = base *)
  let b = base_of "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H" in
  let open Threatdb.Cvss in
  check (Alcotest.float 0.001) "env defaults" (base_score b)
    (environmental_score b default_temporal default_environmental)

let test_cvss_environmental_requirements () =
  let b = base_of "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N" in
  let open Threatdb.Cvss in
  let high_cr = { default_environmental with cr = R_high } in
  let low_cr = { default_environmental with cr = R_low } in
  let base = base_score b in
  check Alcotest.bool "CR:H raises" true
    (environmental_score b default_temporal high_cr > base);
  check Alcotest.bool "CR:L lowers" true
    (environmental_score b default_temporal low_cr < base)

let test_cvss_vector_roundtrip () =
  List.iter
    (fun (c : Threatdb.Cve.t) ->
      let v = Threatdb.Cvss.to_vector c.Threatdb.Cve.vector in
      match Threatdb.Cvss.of_vector v with
      | Ok b ->
          check (Alcotest.float 0.0001) ("roundtrip " ^ v)
            (Threatdb.Cvss.base_score c.Threatdb.Cve.vector)
            (Threatdb.Cvss.base_score b)
      | Error e -> fail e)
    Threatdb.Cve.all

let test_cvss_vector_errors () =
  List.iter
    (fun v ->
      match Threatdb.Cvss.of_vector v with
      | Error _ -> ()
      | Ok _ -> fail (Printf.sprintf "accepted bad vector %S" v))
    [
      "CVSS:2.0/AV:N";
      "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H";
      "CVSS:3.1/AV:Q/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H";
      "gibberish";
    ]

let test_cvss_roundup () =
  let open Threatdb.Cvss in
  check (Alcotest.float 0.0001) "exact stays" 4.0 (roundup 4.0);
  check (Alcotest.float 0.0001) "rounds up" 4.1 (roundup 4.02);
  (* the spec's motivating example: 8.6 * 0.915... *)
  check (Alcotest.float 0.0001) "known artifact" 6.9 (roundup 6.8900000000000001)

let prop_cvss_score_in_range =
  let gen =
    let open QCheck.Gen in
    let open Threatdb.Cvss in
    let av = oneofl [ AV_network; AV_adjacent; AV_local; AV_physical ] in
    let ac = oneofl [ AC_low; AC_high ] in
    let pr = oneofl [ PR_none; PR_low; PR_high ] in
    let ui = oneofl [ UI_none; UI_required ] in
    let s = oneofl [ S_unchanged; S_changed ] in
    let cia = oneofl [ I_high; I_low; I_none ] in
    map
      (fun (av, ac, pr, ui, s, (c, i, a)) -> { av; ac; pr; ui; s; c; i; a })
      (tup6 av ac pr ui s (tup3 cia cia cia))
  in
  QCheck.Test.make ~name:"cvss: scores in [0,10], one decimal, monotone bands"
    ~count:500
    (QCheck.make ~print:Threatdb.Cvss.to_vector gen)
    (fun b ->
      let s = Threatdb.Cvss.base_score b in
      let decimal_ok = Float.abs ((s *. 10.) -. Float.round (s *. 10.)) < 1e-9 in
      s >= 0. && s <= 10. && decimal_ok)

let prop_cvss_vector_roundtrip =
  let gen =
    let open QCheck.Gen in
    let open Threatdb.Cvss in
    map
      (fun (av, ac, pr, ui, s, (c, i, a)) -> { av; ac; pr; ui; s; c; i; a })
      (tup6
         (oneofl [ AV_network; AV_adjacent; AV_local; AV_physical ])
         (oneofl [ AC_low; AC_high ])
         (oneofl [ PR_none; PR_low; PR_high ])
         (oneofl [ UI_none; UI_required ])
         (oneofl [ S_unchanged; S_changed ])
         (tup3
            (oneofl [ I_high; I_low; I_none ])
            (oneofl [ I_high; I_low; I_none ])
            (oneofl [ I_high; I_low; I_none ])))
  in
  QCheck.Test.make ~name:"cvss: of_vector . to_vector = id" ~count:300
    (QCheck.make ~print:Threatdb.Cvss.to_vector gen)
    (fun b ->
      match Threatdb.Cvss.of_vector (Threatdb.Cvss.to_vector b) with
      | Ok b' -> b = b'
      | Error _ -> false)

(* -------------------------------------------------------------------- *)
(* Snapshots                                                             *)
(* -------------------------------------------------------------------- *)

let test_referential_integrity () =
  check (Alcotest.list Alcotest.string) "no broken links" []
    (Threatdb.Db.referential_integrity ())

let test_cwe_hierarchy () =
  match Threatdb.Cwe.find 306 with
  | Some w ->
      let ancestors = Threatdb.Cwe.ancestors w in
      check (Alcotest.list Alcotest.int) "306 -> 287 -> 284" [ 287; 284 ]
        (List.map (fun (a : Threatdb.Cwe.t) -> a.Threatdb.Cwe.id) ancestors)
  | None -> fail "CWE-306 missing"

let test_cwe_for_type () =
  let ws = Threatdb.Cwe.for_component_type "plc" in
  check Alcotest.bool "plc has CWE-306" true
    (List.exists (fun (w : Threatdb.Cwe.t) -> w.Threatdb.Cwe.id = 306) ws)

let test_capec_for_cwe () =
  let patterns = Threatdb.Capec.for_cwe 829 in
  check Alcotest.bool "targeted malware exploits CWE-829" true
    (List.exists
       (fun (p : Threatdb.Capec.t) -> p.Threatdb.Capec.id = 542)
       patterns)

let test_attck_exploitation_of_remote_services () =
  (* the technique named in §VII *)
  match Threatdb.Attck.find_technique "T0866" with
  | Some t ->
      check Alcotest.string "name" "Exploitation of Remote Services"
        t.Threatdb.Attck.name;
      check Alcotest.bool "applies to workstations" true
        (List.mem "workstation" t.Threatdb.Attck.applicable_types)
  | None -> fail "T0866 missing"

let test_attck_mitigations_of_paper () =
  (* M1 = User Training, M2 = Endpoint Security (antimalware) *)
  (match Threatdb.Attck.find_mitigation "M0917" with
  | Some m -> check Alcotest.string "M1" "User Training" m.Threatdb.Attck.mname
  | None -> fail "M0917 missing");
  match Threatdb.Attck.find_technique "T0865" with
  | Some t ->
      let mids =
        List.map
          (fun (m : Threatdb.Attck.mitigation) -> m.Threatdb.Attck.mid)
          (Threatdb.Attck.mitigations_for t)
      in
      check Alcotest.bool "spearphishing mitigated by training" true
        (List.mem "M0917" mids);
      check Alcotest.bool "and by endpoint security" true
        (List.mem "M0949" mids)
  | None -> fail "T0865 missing"

let test_attck_tactic_query () =
  let impact = Threatdb.Attck.techniques_for_tactic Threatdb.Attck.Impact in
  check Alcotest.bool "loss of view is an impact" true
    (List.exists (fun (t : Threatdb.Attck.technique) -> t.Threatdb.Attck.id = "T0829") impact)

let test_cve_queries () =
  let plc_cves = Threatdb.Cve.for_component_type "plc" in
  check Alcotest.bool "plc has the program-download CVE" true
    (List.exists
       (fun (c : Threatdb.Cve.t) -> c.Threatdb.Cve.id = "CVE-SIM-2022-0201")
       plc_cves);
  match Threatdb.Cve.find "CVE-SIM-2023-0102" with
  | Some c ->
      check (Alcotest.float 0.001) "browser CVE scores 9.6" 9.6
        (Threatdb.Cve.score c)
  | None -> fail "CVE-SIM-2023-0102 missing"

(* -------------------------------------------------------------------- *)
(* Db / ASP facts                                                        *)
(* -------------------------------------------------------------------- *)

let test_db_threats_for_type () =
  let threats = Threatdb.Db.threats_for_type "workstation" in
  check Alcotest.bool "several threats" true (List.length threats >= 3);
  let spear =
    List.find_opt
      (fun t -> t.Threatdb.Db.technique.Threatdb.Attck.id = "T0865")
      threats
  in
  match spear with
  | Some t ->
      (* backed by the drive-by CVE? it applies to browser/email_client, not
         workstation, so severity falls back to CAPEC (VH) *)
      check Alcotest.bool "severity is high or very high" true
        (Qual.Level.compare t.Threatdb.Db.severity Qual.Level.High >= 0)
  | None -> fail "workstation should face spearphishing"

let test_db_asp_facts () =
  let p =
    Threatdb.Db.asp_facts
      ~components:[ ("ews", "workstation"); ("panel", "hmi") ]
  in
  match Asp.Solver.solve (Asp.Grounder.ground p) with
  | [ m ] ->
      check Alcotest.bool "ews vulnerable to T0866" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "vulnerable(ews, t0866)"));
      check Alcotest.bool "panel loss of view" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "vulnerable(panel, t0829)"));
      check Alcotest.bool "user training mitigates spearphishing" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "mitigates(m0917, t0865)"));
      check Alcotest.bool "mitigation cost emitted" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "mitigation_cost(m0917, 2)"))
  | _ -> fail "expected one model"

let test_db_asp_facts_compose () =
  (* find the cheapest mitigation covering every threat of one component *)
  let p =
    Asp.Program.append
      (Threatdb.Db.asp_facts ~components:[ ("ews", "workstation") ])
      (Asp.Parser.parse_program
         "{ active(M) : mitigation(M) }.\n\
          covered(T) :- vulnerable(ews, T), mitigates(M, T), active(M).\n\
          :- vulnerable(ews, T), not covered(T).\n\
          :~ active(M), mitigation_cost(M, C). [C@1, M]")
  in
  match Asp.Solver.solve_optimal (Asp.Grounder.ground p) with
  | m :: _ ->
      let active = Asp.Model.by_predicate m "active" in
      check Alcotest.bool "found a covering set" true (List.length active >= 1)
  | [] -> fail "expected an optimal covering"

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "threatdb.cvss",
      [
        Alcotest.test_case "golden base scores" `Quick
          test_cvss_golden_base_scores;
        Alcotest.test_case "severity bands" `Quick test_cvss_severity_bands;
        Alcotest.test_case "temporal" `Quick test_cvss_temporal;
        Alcotest.test_case "environmental defaults" `Quick
          test_cvss_environmental_defaults;
        Alcotest.test_case "environmental requirements" `Quick
          test_cvss_environmental_requirements;
        Alcotest.test_case "vector roundtrip (seed)" `Quick
          test_cvss_vector_roundtrip;
        Alcotest.test_case "vector errors" `Quick test_cvss_vector_errors;
        Alcotest.test_case "roundup" `Quick test_cvss_roundup;
        qcheck prop_cvss_score_in_range;
        qcheck prop_cvss_vector_roundtrip;
      ] );
    ( "threatdb.snapshots",
      [
        Alcotest.test_case "referential integrity" `Quick
          test_referential_integrity;
        Alcotest.test_case "cwe hierarchy" `Quick test_cwe_hierarchy;
        Alcotest.test_case "cwe for type" `Quick test_cwe_for_type;
        Alcotest.test_case "capec for cwe" `Quick test_capec_for_cwe;
        Alcotest.test_case "T0866 of the paper" `Quick
          test_attck_exploitation_of_remote_services;
        Alcotest.test_case "paper mitigations M1/M2" `Quick
          test_attck_mitigations_of_paper;
        Alcotest.test_case "tactic query" `Quick test_attck_tactic_query;
        Alcotest.test_case "cve queries" `Quick test_cve_queries;
      ] );
    ( "threatdb.db",
      [
        Alcotest.test_case "threats for type" `Quick test_db_threats_for_type;
        Alcotest.test_case "asp facts" `Quick test_db_asp_facts;
        Alcotest.test_case "asp facts compose (set cover)" `Quick
          test_db_asp_facts_compose;
      ] );
  ]
