(* Tests for one-at-a-time sensitivity analysis (lib/sensitivity). *)

let check = Alcotest.check
let fail = Alcotest.fail

let lvl s = Option.get (Qual.Level.of_string s)

(* Output = O-RA risk over factors lm/lef. *)
let risk_f assignment =
  Risk.Ora.risk ~lm:(List.assoc "lm" assignment) ~lef:(List.assoc "lef" assignment)

let baseline = [ ("lm", lvl "M"); ("lef", lvl "L") ]

let test_oat_paper_example () =
  (* §V.A: with LEF=L, varying LM over {VL, L} leaves risk VL: insensitive;
     varying over L..VH changes the output: sensitive *)
  let narrow =
    Sensitivity.Oat.analyze
      ~factors:[ { Sensitivity.Oat.name = "lm"; candidates = [ lvl "VL"; lvl "L" ] } ]
      ~baseline ~f:risk_f
  in
  check (Alcotest.list Alcotest.string) "narrow range insensitive" []
    (Sensitivity.Oat.sensitive_factors narrow);
  let wide =
    Sensitivity.Oat.analyze
      ~factors:
        [
          {
            Sensitivity.Oat.name = "lm";
            candidates = [ lvl "L"; lvl "M"; lvl "H"; lvl "VH" ];
          };
        ]
      ~baseline ~f:risk_f
  in
  check (Alcotest.list Alcotest.string) "wide range sensitive" [ "lm" ]
    (Sensitivity.Oat.sensitive_factors wide)

let test_oat_tornado_ranking () =
  let report =
    Sensitivity.Oat.analyze
      ~factors:
        [
          { Sensitivity.Oat.name = "lm"; candidates = [ lvl "VL"; lvl "L" ] };
          { Sensitivity.Oat.name = "lef"; candidates = Qual.Level.all };
        ]
      ~baseline ~f:risk_f
  in
  match Sensitivity.Oat.tornado report with
  | first :: second :: [] ->
      check Alcotest.string "lef dominates" "lef" first.Sensitivity.Oat.factor;
      check Alcotest.bool "spread ordering" true
        (first.Sensitivity.Oat.spread >= second.Sensitivity.Oat.spread)
  | _ -> fail "expected two entries"

let test_oat_outcomes_recorded () =
  let report =
    Sensitivity.Oat.analyze
      ~factors:[ { Sensitivity.Oat.name = "lef"; candidates = Qual.Level.all } ]
      ~baseline ~f:risk_f
  in
  match report with
  | [ e ] ->
      check Alcotest.int "five outcomes" 5 (List.length e.Sensitivity.Oat.outcomes);
      (* baseline lm=M: outcomes are the M row of Table I: VL L M H VH *)
      check (Alcotest.list Alcotest.string) "row of Table I"
        [ "VL"; "L"; "M"; "H"; "VH" ]
        (List.map
           (fun (_, o) -> Qual.Level.to_string o)
           e.Sensitivity.Oat.outcomes)
  | _ -> fail "expected one entry"

let test_oat_validation () =
  (match
     Sensitivity.Oat.analyze
       ~factors:[ { Sensitivity.Oat.name = "ghost"; candidates = [ lvl "L" ] } ]
       ~baseline ~f:risk_f
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown factor accepted");
  match
    Sensitivity.Oat.analyze
      ~factors:[ { Sensitivity.Oat.name = "lm"; candidates = [] } ]
      ~baseline ~f:risk_f
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty candidates accepted"

let test_oat_render () =
  let report =
    Sensitivity.Oat.analyze
      ~factors:[ { Sensitivity.Oat.name = "lef"; candidates = Qual.Level.all } ]
      ~baseline ~f:risk_f
  in
  let s = Sensitivity.Oat.render report in
  check Alcotest.bool "mentions SENSITIVE" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 9 <= String.length s && (String.sub s i 9 = "SENSITIVE" || contains (i + 1))
    in
    contains 0)

let prop_constant_function_never_sensitive =
  QCheck.Test.make ~name:"oat: constant function has zero spread" ~count:100
    (QCheck.make (QCheck.Gen.oneofl Qual.Level.all))
    (fun const ->
      let report =
        Sensitivity.Oat.analyze
          ~factors:[ { Sensitivity.Oat.name = "lm"; candidates = Qual.Level.all } ]
          ~baseline
          ~f:(fun _ -> const)
      in
      Sensitivity.Oat.sensitive_factors report = [])

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "sensitivity.oat",
      [
        Alcotest.test_case "paper LM example" `Quick test_oat_paper_example;
        Alcotest.test_case "tornado ranking" `Quick test_oat_tornado_ranking;
        Alcotest.test_case "outcomes recorded" `Quick test_oat_outcomes_recorded;
        Alcotest.test_case "validation" `Quick test_oat_validation;
        Alcotest.test_case "render" `Quick test_oat_render;
        qcheck prop_constant_function_never_sensitive;
      ] );
  ]
