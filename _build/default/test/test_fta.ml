(* Tests for the FTA baseline (lib/fta). *)

let check = Alcotest.check
let fail = Alcotest.fail

let cuts = Alcotest.list (Alcotest.list Alcotest.string)

(* -------------------------------------------------------------------- *)
(* Tree                                                                  *)
(* -------------------------------------------------------------------- *)

let sample =
  Fta.Tree.Or
    [
      Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ];
      Fta.Tree.Basic "c";
    ]

let test_tree_eval () =
  let v events e = List.mem e events in
  check Alcotest.bool "a alone insufficient" false
    (Fta.Tree.eval (v [ "a" ]) sample);
  check Alcotest.bool "a and b fire" true (Fta.Tree.eval (v [ "a"; "b" ]) sample);
  check Alcotest.bool "c alone fires" true (Fta.Tree.eval (v [ "c" ]) sample)

let test_tree_k_of_n () =
  let t =
    Fta.Tree.K_of_n (2, [ Fta.Tree.Basic "x"; Fta.Tree.Basic "y"; Fta.Tree.Basic "z" ])
  in
  let v events e = List.mem e events in
  check Alcotest.bool "one of three" false (Fta.Tree.eval (v [ "x" ]) t);
  check Alcotest.bool "two of three" true (Fta.Tree.eval (v [ "x"; "z" ]) t)

let test_tree_metrics () =
  check Alcotest.int "size" 5 (Fta.Tree.size sample);
  check Alcotest.int "depth" 3 (Fta.Tree.depth sample);
  check (Alcotest.list Alcotest.string) "basic events" [ "a"; "b"; "c" ]
    (Fta.Tree.basic_events sample)

(* -------------------------------------------------------------------- *)
(* Cut sets                                                              *)
(* -------------------------------------------------------------------- *)

let test_cutsets_simple () =
  check cuts "or-and" [ [ "c" ]; [ "a"; "b" ] ] (Fta.Cutset.minimal_cut_sets sample)

let test_cutsets_absorption () =
  (* (a & b & c) | (a & b) -> only (a & b) is minimal *)
  let t =
    Fta.Tree.Or
      [
        Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b"; Fta.Tree.Basic "c" ];
        Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ];
      ]
  in
  check cuts "absorbed" [ [ "a"; "b" ] ] (Fta.Cutset.minimal_cut_sets t)

let test_cutsets_k_of_n () =
  let t =
    Fta.Tree.K_of_n (2, [ Fta.Tree.Basic "x"; Fta.Tree.Basic "y"; Fta.Tree.Basic "z" ])
  in
  check cuts "pairs"
    [ [ "x"; "y" ]; [ "x"; "z" ]; [ "y"; "z" ] ]
    (Fta.Cutset.minimal_cut_sets t)

let test_cutsets_shared_event () =
  (* shared event across branches: (a&b)|(a&c), minimal: {a,b},{a,c} *)
  let t =
    Fta.Tree.And
      [
        Fta.Tree.Basic "a";
        Fta.Tree.Or [ Fta.Tree.Basic "b"; Fta.Tree.Basic "c" ];
      ]
  in
  check cuts "distributed" [ [ "a"; "b" ]; [ "a"; "c" ] ]
    (Fta.Cutset.minimal_cut_sets t)

let test_cutsets_metrics () =
  check Alcotest.int "order" 1
    (Fta.Cutset.order (Fta.Cutset.minimal_cut_sets sample));
  check (Alcotest.list Alcotest.string) "spof" [ "c" ]
    (Fta.Cutset.single_points_of_failure sample);
  check Alcotest.int "empty order" max_int (Fta.Cutset.order [])

let prop_cutsets_are_cutsets =
  (* every reported minimal cut set actually triggers the top event, and
     removing any element stops it (minimality) *)
  let tree_gen =
    let open QCheck.Gen in
    let basic = map (fun c -> Fta.Tree.Basic (String.make 1 c)) (char_range 'a' 'f') in
    fix
      (fun self depth ->
        if depth = 0 then basic
        else
          frequency
            [
              (3, basic);
              (2, map (fun ts -> Fta.Tree.And ts) (list_size (int_range 1 3) (self (depth - 1))));
              (2, map (fun ts -> Fta.Tree.Or ts) (list_size (int_range 1 3) (self (depth - 1))));
            ])
      3
  in
  QCheck.Test.make ~name:"fta: minimal cut sets trigger and are minimal"
    ~count:200
    (QCheck.make ~print:Fta.Tree.to_string tree_gen)
    (fun t ->
      let mcs = Fta.Cutset.minimal_cut_sets t in
      List.for_all
        (fun cut ->
          Fta.Cutset.is_cut_set t cut
          && List.for_all
               (fun e ->
                 not (Fta.Cutset.is_cut_set t (List.filter (fun x -> x <> e) cut)))
               cut)
        mcs)

let prop_cutsets_complete =
  (* any satisfying assignment contains some minimal cut set *)
  let tree_gen =
    let open QCheck.Gen in
    let basic = map (fun c -> Fta.Tree.Basic (String.make 1 c)) (char_range 'a' 'e') in
    fix
      (fun self depth ->
        if depth = 0 then basic
        else
          frequency
            [
              (2, basic);
              (2, map (fun ts -> Fta.Tree.And ts) (list_size (int_range 1 3) (self (depth - 1))));
              (2, map (fun ts -> Fta.Tree.Or ts) (list_size (int_range 1 3) (self (depth - 1))));
            ])
      3
  in
  QCheck.Test.make ~name:"fta: cut sets cover every satisfying assignment"
    ~count:100
    (QCheck.make ~print:Fta.Tree.to_string tree_gen)
    (fun t ->
      let events = Fta.Tree.basic_events t in
      let mcs = Fta.Cutset.minimal_cut_sets t in
      (* enumerate all assignments (≤ 2^5) *)
      let rec assignments = function
        | [] -> [ [] ]
        | e :: rest ->
            let sub = assignments rest in
            sub @ List.map (fun s -> e :: s) sub
      in
      List.for_all
        (fun on ->
          let fires = Fta.Tree.eval (fun e -> List.mem e on) t in
          let covered =
            List.exists (fun cut -> List.for_all (fun e -> List.mem e on) cut) mcs
          in
          fires = covered)
        (assignments events))

(* -------------------------------------------------------------------- *)
(* From EPA                                                              *)
(* -------------------------------------------------------------------- *)

(* reuse the miniature system of test_epa: drain fault FD -> overflow,
   alarm fault FA; FC induces both *)
let mini_catalog =
  [
    Epa.Fault.make ~id:"FD" ~component:"drain" ~mode:(Epa.Fault.Stuck_at "off") ();
    Epa.Fault.make ~id:"FA" ~component:"alarm" ~mode:Epa.Fault.Omission ();
    Epa.Fault.make ~id:"FC" ~component:"ctrl" ~mode:Epa.Fault.Compromise
      ~induces:[ "FD"; "FA" ] ();
  ]

let mini_build ~faults =
  let drain_broken = List.mem "FD" faults in
  let alarm_broken = List.mem "FA" faults in
  let init = Qual.Qstate.of_list [ ("fill", "low"); ("alarm", "false") ] in
  let step s =
    let fill = Qual.Qstate.get "fill" s in
    let fill' =
      match fill with
      | "low" -> "high"
      | "high" -> if drain_broken then "overflow" else "low"
      | other -> other
    in
    let alarm' =
      if fill' = "overflow" && not alarm_broken then "true"
      else Qual.Qstate.get "alarm" s
    in
    Qual.Qstate.of_list [ ("fill", fill'); ("alarm", alarm') ]
  in
  Epa.Dynamics.to_ts (Epa.Dynamics.make ~init ~step)

let mini_system =
  {
    Epa.Analysis.catalog = mini_catalog;
    blocks = (fun _ -> []);
    build = mini_build;
    requirements =
      [
        Epa.Requirement.make ~id:"R1" ~description:"no overflow"
          ~formula:"G !fill=overflow";
        Epa.Requirement.make ~id:"R2" ~description:"overflow alarmed"
          ~formula:"G (fill=overflow -> F alarm)";
      ];
  }

let test_from_epa_exact_tree () =
  let rows = Epa.Analysis.run mini_system in
  let t = Fta.From_epa.of_analysis ~requirement:"R1" rows in
  (* R1 violated iff FD or FC active: minimal cut sets {FC}, {FD} *)
  check cuts "R1 cut sets" [ [ "FC" ]; [ "FD" ] ] (Fta.Cutset.minimal_cut_sets t);
  let t2 = Fta.From_epa.of_analysis ~requirement:"R2" rows in
  (* R2 needs overflow AND no alarm: {FC} or {FA,FD} *)
  check cuts "R2 cut sets" [ [ "FC" ]; [ "FA"; "FD" ] ]
    (Fta.Cutset.minimal_cut_sets t2)

let test_from_epa_no_violation () =
  let safe_system = { mini_system with Epa.Analysis.catalog = [] } in
  let rows = Epa.Analysis.run safe_system in
  let t = Fta.From_epa.of_analysis ~requirement:"R1" rows in
  check cuts "no cut sets" [] (Fta.Cutset.minimal_cut_sets t)

let test_structural_overapproximates () =
  (* naive structural tree: every fault whose component reaches the tank is
     flagged — including the alarm-only fault FA that EPA proves harmless
     for R1 *)
  let topology =
    Epa.Propagation.make_network
      ~components:[ "ctrl"; "drain"; "alarm"; "tank" ]
      ~edges:[ ("ctrl", "drain"); ("drain", "tank"); ("alarm", "tank") ]
      ()
  in
  let structural =
    Fta.From_epa.structural ~topology ~asset:"tank" ~faults:mini_catalog
  in
  let rows = Epa.Analysis.run mini_system in
  let exact = Fta.From_epa.of_analysis ~requirement:"R1" rows in
  let cmp =
    Fta.From_epa.compare_cut_sets
      ~exact:(Fta.Cutset.minimal_cut_sets exact)
      ~structural:(Fta.Cutset.minimal_cut_sets structural)
  in
  check Alcotest.bool "structural has spurious cut sets" true
    (cmp.Fta.From_epa.spurious <> []);
  check cuts "FA is the spurious one" [ [ "FA" ] ] cmp.Fta.From_epa.spurious;
  check Alcotest.bool "but misses nothing (over-approximation)" true
    (cmp.Fta.From_epa.escaped = []);
  check Alcotest.bool "not agreeing" false (Fta.From_epa.agree cmp)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "fta.tree",
      [
        Alcotest.test_case "eval" `Quick test_tree_eval;
        Alcotest.test_case "k of n" `Quick test_tree_k_of_n;
        Alcotest.test_case "metrics" `Quick test_tree_metrics;
      ] );
    ( "fta.cutset",
      [
        Alcotest.test_case "simple" `Quick test_cutsets_simple;
        Alcotest.test_case "absorption" `Quick test_cutsets_absorption;
        Alcotest.test_case "k of n" `Quick test_cutsets_k_of_n;
        Alcotest.test_case "shared event" `Quick test_cutsets_shared_event;
        Alcotest.test_case "metrics" `Quick test_cutsets_metrics;
        qcheck prop_cutsets_are_cutsets;
        qcheck prop_cutsets_complete;
      ] );
    ( "fta.from_epa",
      [
        Alcotest.test_case "exact tree from sweep" `Quick test_from_epa_exact_tree;
        Alcotest.test_case "no violation" `Quick test_from_epa_no_violation;
        Alcotest.test_case "structural over-approximates" `Quick
          test_structural_overapproximates;
      ] );
  ]
