(* Tests for the cascade scaling substrate (Cpsrisk.Cascade) and the
   Graphviz renderers. *)

let check = Alcotest.check
let fail = Alcotest.fail

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* -------------------------------------------------------------------- *)
(* Cascade                                                               *)
(* -------------------------------------------------------------------- *)

let test_cascade_shapes () =
  check Alcotest.int "3 faults" 3 (List.length (Cpsrisk.Cascade.faults 3));
  check Alcotest.int "3 requirements" 3
    (List.length (Cpsrisk.Cascade.requirements 3));
  let rows = Epa.Analysis.run (Cpsrisk.Cascade.system 3) in
  check Alcotest.int "2^3 scenarios" 8 (List.length rows);
  check Alcotest.int "all but empty hazardous" 7
    (List.length (Epa.Analysis.hazardous rows))

let test_cascade_fault_free_is_safe () =
  let row =
    Epa.Analysis.run_scenario (Cpsrisk.Cascade.system 4) (Epa.Scenario.make [])
  in
  check (Alcotest.list Alcotest.string) "no violations" []
    (Epa.Analysis.violations row)

let test_cascade_spill_propagates_downstream () =
  (* breaking only drain 0 floods every downstream tank *)
  let row =
    Epa.Analysis.run_scenario (Cpsrisk.Cascade.system 3)
      (Epa.Scenario.make [ "D0" ])
  in
  check (Alcotest.list Alcotest.string) "all requirements violated"
    [ "R0"; "R1"; "R2" ]
    (Epa.Analysis.violations row)

let test_cascade_downstream_fault_stays_local () =
  (* breaking the last drain does not affect upstream tanks *)
  let row =
    Epa.Analysis.run_scenario (Cpsrisk.Cascade.system 3)
      (Epa.Scenario.make [ "D2" ])
  in
  check (Alcotest.list Alcotest.string) "only the last tank" [ "R2" ]
    (Epa.Analysis.violations row)

let test_cascade_asp_programs () =
  let g = Asp.Grounder.ground (Cpsrisk.Cascade.asp_chain_program 5) in
  (* path(i,j) for i<j over 5 nodes: 10 ground atoms + 4 edges *)
  check Alcotest.int "chain universe" 14 (Asp.Ground.atom_count g);
  let models = Asp.Solver.solve (Asp.Grounder.ground (Cpsrisk.Cascade.asp_choice_program 5)) in
  check Alcotest.int "2^4 models" 16 (List.length models)

(* -------------------------------------------------------------------- *)
(* Dot renderers                                                         *)
(* -------------------------------------------------------------------- *)

let test_archimate_dot () =
  let dot = Archimate.Dot.render Cpsrisk.Water_tank.refined_model in
  check Alcotest.bool "digraph" true (contains dot "digraph");
  check Alcotest.bool "layer cluster" true (contains dot "cluster_");
  check Alcotest.bool "workstation node" true (contains dot "Engineering Workstation");
  check Alcotest.bool "composition styling" true (contains dot "arrowtail=diamond");
  (* every element id appears *)
  List.iter
    (fun (e : Archimate.Element.t) ->
      check Alcotest.bool ("node " ^ e.Archimate.Element.id) true
        (contains dot e.Archimate.Element.id))
    (Archimate.Model.elements Cpsrisk.Water_tank.refined_model)

let test_archimate_dot_escaping () =
  let m =
    Archimate.Model.empty ~name:"with \"quotes\""
    |> Archimate.Model.add_element
         (Archimate.Element.make ~id:"x" ~name:"A \"named\" thing"
            ~kind:Archimate.Element.Node ())
  in
  let dot = Archimate.Dot.render m in
  check Alcotest.bool "escaped quotes" true (contains dot "\\\"named\\\"")

let test_layer_shapes_distinct () =
  let shapes =
    List.map Archimate.Dot.element_shape
      [
        Archimate.Element.Business; Archimate.Element.Application;
        Archimate.Element.Technology; Archimate.Element.Physical;
        Archimate.Element.Motivation;
      ]
  in
  check Alcotest.int "all distinct" 5
    (List.length (List.sort_uniq String.compare shapes))

let test_cascade_system_matches_paper_shape () =
  (* ablation-style check: the hazard count grows exactly as 2^n - 1 *)
  List.iter
    (fun n ->
      let rows = Epa.Analysis.run (Cpsrisk.Cascade.system n) in
      check Alcotest.int
        (Printf.sprintf "n=%d hazard count" n)
        ((1 lsl n) - 1)
        (List.length (Epa.Analysis.hazardous rows)))
    [ 1; 2; 3; 4; 5 ]

let suites =
  [
    ( "cpsrisk.cascade",
      [
        Alcotest.test_case "shapes" `Quick test_cascade_shapes;
        Alcotest.test_case "fault-free safe" `Quick test_cascade_fault_free_is_safe;
        Alcotest.test_case "spill propagates" `Quick
          test_cascade_spill_propagates_downstream;
        Alcotest.test_case "downstream stays local" `Quick
          test_cascade_downstream_fault_stays_local;
        Alcotest.test_case "asp programs" `Quick test_cascade_asp_programs;
        Alcotest.test_case "hazards = 2^n - 1" `Quick
          test_cascade_system_matches_paper_shape;
      ] );
    ( "archimate.dot",
      [
        Alcotest.test_case "render" `Quick test_archimate_dot;
        Alcotest.test_case "escaping" `Quick test_archimate_dot_escaping;
        Alcotest.test_case "layer shapes" `Quick test_layer_shapes_distinct;
      ] );
  ]
