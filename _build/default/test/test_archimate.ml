(* Tests for the modeling layer (lib/archimate). *)

let check = Alcotest.check
let fail = Alcotest.fail

let el ?(props = []) id name kind =
  Archimate.Element.make ~id ~name ~kind ~properties:props ()

let rel id source target kind =
  Archimate.Relationship.make ~id ~source ~target ~kind ()

(* A small fragment of the paper's water-tank model. *)
let tank_model () =
  let open Archimate in
  Model.empty ~name:"Water Tank System"
  |> Model.add_element (el "tank" "Water Tank" Element.Equipment)
  |> Model.add_element
       (el "wls" "Water Level Sensor" Element.Device
          ~props:[ ("fault_modes", "stuck_at,omission") ])
  |> Model.add_element (el "ctrl" "Water Tank Controller" Element.Application_component)
  |> Model.add_element (el "in_valve" "Input Valve" Element.Equipment)
  |> Model.add_element (el "ews" "Engineering Workstation" Element.Node)
  |> Model.add_element (el "email" "E-mail Client" Element.Application_component)
  |> Model.add_relationship (rel "r1" "wls" "ctrl" Relationship.Flow)
  |> Model.add_relationship (rel "r2" "ctrl" "in_valve" Relationship.Flow)
  |> Model.add_relationship (rel "r3" "in_valve" "tank" Relationship.Flow)
  |> Model.add_relationship (rel "r4" "ews" "ctrl" Relationship.Serving)
  |> Model.add_relationship (rel "r5" "ews" "email" Relationship.Composition)

(* -------------------------------------------------------------------- *)
(* Element / Relationship                                                *)
(* -------------------------------------------------------------------- *)

let test_element_layers () =
  check Alcotest.string "device is technology" "technology"
    Archimate.Element.(layer_to_string (layer_of_kind Device));
  check Alcotest.string "equipment is physical" "physical"
    Archimate.Element.(layer_to_string (layer_of_kind Equipment));
  check Alcotest.string "process is business" "business"
    Archimate.Element.(layer_to_string (layer_of_kind Business_process))

let test_element_kind_roundtrip () =
  List.iter
    (fun k ->
      match Archimate.Element.(kind_of_string (kind_to_string k)) with
      | Some k' ->
          check Alcotest.string "kind roundtrip"
            (Archimate.Element.kind_to_string k)
            (Archimate.Element.kind_to_string k')
      | None -> fail "kind did not roundtrip")
    Archimate.Element.all_kinds

let test_element_properties () =
  let e =
    el "x" "X" Archimate.Element.Node ~props:[ ("zone", "it") ]
    |> Archimate.Element.with_property "zone" "ot"
    |> Archimate.Element.with_property "criticality" "high"
  in
  check (Alcotest.option Alcotest.string) "replaced" (Some "ot")
    (Archimate.Element.property "zone" e);
  check (Alcotest.option Alcotest.string) "added" (Some "high")
    (Archimate.Element.property "criticality" e)

let test_relationship_roundtrip () =
  List.iter
    (fun k ->
      match
        Archimate.Relationship.(kind_of_string (kind_to_string k))
      with
      | Some k' ->
          check Alcotest.string "rel kind roundtrip"
            (Archimate.Relationship.kind_to_string k)
            (Archimate.Relationship.kind_to_string k')
      | None -> fail "relationship kind did not roundtrip")
    Archimate.Relationship.all_kinds

(* -------------------------------------------------------------------- *)
(* Model                                                                 *)
(* -------------------------------------------------------------------- *)

let test_model_construction () =
  let m = tank_model () in
  check Alcotest.int "elements" 6 (Archimate.Model.element_count m);
  check Alcotest.int "relationships" 5 (Archimate.Model.relationship_count m)

let test_model_rejects_duplicates_and_dangling () =
  let m = tank_model () in
  (match
     Archimate.Model.add_element (el "tank" "Another" Archimate.Element.Node) m
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "duplicate id accepted");
  match
    Archimate.Model.add_relationship
      (rel "rx" "tank" "ghost" Archimate.Relationship.Flow)
      m
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "dangling endpoint accepted"

let test_model_queries () =
  let m = tank_model () in
  let names es = List.map (fun (e : Archimate.Element.t) -> e.Archimate.Element.id) es in
  check (Alcotest.list Alcotest.string) "flow successors of ctrl" [ "in_valve" ]
    (names (Archimate.Model.successors ~kind:Archimate.Relationship.Flow "ctrl" m));
  check (Alcotest.list Alcotest.string) "predecessors of tank" [ "in_valve" ]
    (names (Archimate.Model.predecessors "tank" m));
  check (Alcotest.list Alcotest.string) "parts of ews" [ "email" ]
    (names (Archimate.Model.parts "ews" m));
  (match Archimate.Model.parent "email" m with
  | Some e -> check Alcotest.string "parent" "ews" e.Archimate.Element.id
  | None -> fail "expected a parent");
  check (Alcotest.list Alcotest.string) "flow reachable from wls"
    [ "ctrl"; "in_valve"; "tank" ]
    (names
       (Archimate.Model.reachable ~kinds:[ Archimate.Relationship.Flow ] "wls" m))

let test_model_remove_element_cleans_relationships () =
  let m = tank_model () in
  let m = Archimate.Model.remove_element "ctrl" m in
  check Alcotest.int "element removed" 5 (Archimate.Model.element_count m);
  (* r1, r2, r4 were incident to ctrl *)
  check Alcotest.int "incident rels removed" 2
    (Archimate.Model.relationship_count m)

let test_model_merge () =
  let open Archimate in
  let a =
    Model.empty ~name:"a" |> Model.add_element (el "x" "X" Element.Node)
  in
  let b =
    Model.empty ~name:"b" |> Model.add_element (el "y" "Y" Element.Node)
  in
  let m = Model.merge a b in
  check Alcotest.int "merged" 2 (Model.element_count m);
  match Model.merge a a with
  | exception Invalid_argument _ -> ()
  | _ -> fail "conflicting merge accepted"

(* -------------------------------------------------------------------- *)
(* Aspect merging (Fig. 1 step 1)                                        *)
(* -------------------------------------------------------------------- *)

let architecture_aspect =
  let open Archimate in
  Model.empty ~name:"architecture"
  |> Model.add_element (el "ctrl" "Controller" Element.Application_component)
  |> Model.add_element (el "tank" "Water Tank" Element.Equipment)
  |> Model.add_relationship (rel "a1" "ctrl" "tank" Relationship.Flow)

let deployment_aspect =
  let open Archimate in
  Model.empty ~name:"deployment"
  |> Model.add_element
       (el "ctrl" "Controller" Element.Application_component
          ~props:[ ("node", "plc-1") ])
  |> Model.add_element (el "plc1" "PLC 1" Element.Device)
  |> Model.add_relationship (rel "d1" "plc1" "ctrl" Relationship.Assignment)

let test_aspect_merge_overlapping () =
  match
    Archimate.Aspect.merge ~name:"system"
      [ architecture_aspect; deployment_aspect ]
  with
  | Ok m ->
      check Alcotest.int "union of elements" 3 (Archimate.Model.element_count m);
      check Alcotest.int "union of relationships" 2
        (Archimate.Model.relationship_count m);
      (* deployment property survives on the shared element *)
      check (Alcotest.option Alcotest.string) "property union" (Some "plc-1")
        (Archimate.Element.property "node" (Archimate.Model.element_exn "ctrl" m))
  | Error cs ->
      fail
        (String.concat "; "
           (List.map (Format.asprintf "%a" Archimate.Aspect.pp_conflict) cs))

let test_aspect_merge_name_conflict () =
  let renamed =
    let open Archimate in
    Model.empty ~name:"other"
    |> Model.add_element (el "ctrl" "Renamed Controller" Element.Application_component)
  in
  match Archimate.Aspect.merge ~name:"system" [ architecture_aspect; renamed ] with
  | Error [ c ] ->
      check Alcotest.string "conflicting field" "name" c.Archimate.Aspect.field;
      check Alcotest.string "element" "ctrl" c.Archimate.Aspect.element
  | Error _ -> fail "expected exactly one conflict"
  | Ok _ -> fail "conflicting names accepted"

let test_aspect_merge_property_conflict () =
  let open Archimate in
  let a =
    Model.empty ~name:"a"
    |> Model.add_element (el "x" "X" Element.Node ~props:[ ("zone", "it") ])
  in
  let b =
    Model.empty ~name:"b"
    |> Model.add_element (el "x" "X" Element.Node ~props:[ ("zone", "ot") ])
  in
  match Aspect.merge ~name:"m" [ a; b ] with
  | Error [ c ] -> check Alcotest.string "zone conflict" "zone" c.Aspect.field
  | Error _ -> fail "expected one conflict"
  | Ok _ -> fail "property conflict accepted"

let test_aspect_merge_relationship_conflict () =
  let open Archimate in
  let base = architecture_aspect in
  let other =
    Model.empty ~name:"other"
    |> Model.add_element (el "ctrl" "Controller" Element.Application_component)
    |> Model.add_element (el "tank" "Water Tank" Element.Equipment)
    |> Model.add_relationship (rel "a1" "tank" "ctrl" Relationship.Flow)
  in
  match Aspect.merge ~name:"m" [ base; other ] with
  | Error (c :: _) ->
      check Alcotest.string "relationship conflict" "relationship"
        c.Aspect.field
  | Error [] | Ok _ -> fail "reversed relationship accepted"

(* -------------------------------------------------------------------- *)
(* Catalog                                                               *)
(* -------------------------------------------------------------------- *)

let test_catalog_instantiate () =
  let e =
    Archimate.Catalog.instantiate Archimate.Catalog.standard ~type_name:"valve"
      ~id:"in_valve" ~name:"Input Valve"
  in
  check (Alcotest.option Alcotest.string) "origin type" (Some "valve")
    (Archimate.Element.property "component_type" e);
  match Archimate.Element.property "fault_modes" e with
  | Some modes ->
      check Alcotest.bool "has stuck_at_open" true
        (List.mem "stuck_at_open" (String.split_on_char ',' modes))
  | None -> fail "expected fault modes"

let test_catalog_unknown () =
  match
    Archimate.Catalog.instantiate Archimate.Catalog.standard
      ~type_name:"quantum_tunnel" ~id:"q" ~name:"Q"
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown type accepted"

let test_catalog_extension () =
  let custom =
    Archimate.Catalog.add
      {
        Archimate.Catalog.type_name = "robot_arm";
        kind = Archimate.Element.Equipment;
        default_properties = [ ("zone", "ot") ];
        fault_modes = [ "frozen"; "overshoot" ];
      }
      Archimate.Catalog.standard
  in
  check Alcotest.int "one more type"
    (Archimate.Catalog.size Archimate.Catalog.standard + 1)
    (Archimate.Catalog.size custom);
  match Archimate.Catalog.find "robot_arm" custom with
  | Some ct ->
      check (Alcotest.list Alcotest.string) "fault modes"
        [ "frozen"; "overshoot" ] ct.Archimate.Catalog.fault_modes
  | None -> fail "custom type not found"

(* -------------------------------------------------------------------- *)
(* Validation                                                            *)
(* -------------------------------------------------------------------- *)

let test_validate_clean_model () =
  check Alcotest.bool "tank model valid" true
    (Archimate.Validate.is_valid (tank_model ()))

let test_validate_composition_cycle () =
  let open Archimate in
  let m =
    Model.empty ~name:"cyclic"
    |> Model.add_element (el "a" "A" Element.Node)
    |> Model.add_element (el "b" "B" Element.Node)
    |> Model.add_relationship (rel "r1" "a" "b" Relationship.Composition)
    |> Model.add_relationship (rel "r2" "b" "a" Relationship.Composition)
  in
  check Alcotest.bool "cycle detected" false (Validate.is_valid m)

let test_validate_warnings () =
  let open Archimate in
  let m =
    Model.empty ~name:"warny"
    |> Model.add_element (el "a" "Thing" Element.Node)
    |> Model.add_element (el "b" "Thing" Element.Node)
    |> Model.add_element (el "c" "" Element.Node)
  in
  let issues = Validate.run m in
  let warnings =
    List.filter (fun i -> i.Validate.severity = Validate.Warning) issues
  in
  (* duplicate name + empty name + 3 isolated *)
  check Alcotest.bool "several warnings" true (List.length warnings >= 4);
  check Alcotest.bool "still valid" true (Validate.is_valid m)

(* -------------------------------------------------------------------- *)
(* Text format                                                           *)
(* -------------------------------------------------------------------- *)

let test_text_roundtrip () =
  let m = tank_model () in
  let m' = Archimate.Text.parse (Archimate.Text.print m) in
  check Alcotest.string "same print" (Archimate.Text.print m)
    (Archimate.Text.print m');
  check Alcotest.int "same elements" (Archimate.Model.element_count m)
    (Archimate.Model.element_count m')

let test_text_parse_literal () =
  let src =
    "# the paper's refined workstation\n\
     model \"Refined EWS\"\n\
     element ews \"Engineering Workstation\" node { zone = \"it\" }\n\
     element email \"E-mail Client\" application_component\n\
     element browser \"Browser\" application_component\n\
     relation c1 composition ews -> email\n\
     relation c2 composition ews -> browser\n\
     relation f1 flow email -> browser { medium = \"link\" }\n"
  in
  let m = Archimate.Text.parse src in
  check Alcotest.int "elements" 3 (Archimate.Model.element_count m);
  check Alcotest.int "relations" 3 (Archimate.Model.relationship_count m);
  match Archimate.Model.relationship "f1" m with
  | Some r ->
      check (Alcotest.option Alcotest.string) "rel property" (Some "link")
        (Archimate.Relationship.property "medium" r)
  | None -> fail "relation f1 missing"

let test_text_shipped_model_file () =
  (* the model file shipped under examples/models must stay parseable *)
  let path = "../examples/models/press_cell.model" in
  let ic = open_in path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let m = Archimate.Text.parse src in
  check Alcotest.string "name" "Press Cell" (Archimate.Model.name m);
  check Alcotest.int "elements" 8 (Archimate.Model.element_count m);
  check Alcotest.bool "valid" true (Archimate.Validate.is_valid m);
  (* every element is typed so the threat layer can pick it up *)
  List.iter
    (fun (e : Archimate.Element.t) ->
      check Alcotest.bool (e.Archimate.Element.id ^ " typed") true
        (Archimate.Element.property "component_type" e <> None))
    (Archimate.Model.elements m)

let test_text_errors () =
  List.iter
    (fun src ->
      match Archimate.Text.parse src with
      | exception Archimate.Text.Error _ -> ()
      | _ -> fail (Printf.sprintf "accepted malformed %S" src))
    [
      "element a \"A\" node";
      "model \"m\"\nelement a \"A\" warp_core";
      "model \"m\"\nrelation r flow a -> b";
      "model \"m\"\nelement a \"A\" node { zone = }";
    ]

(* -------------------------------------------------------------------- *)
(* ASP transformation                                                    *)
(* -------------------------------------------------------------------- *)

let test_to_asp_facts () =
  let p = Archimate.To_asp.facts (tank_model ()) in
  let g = Asp.Grounder.ground p in
  match Asp.Solver.solve g with
  | [ m ] ->
      check Alcotest.int "component facts" 6
        (List.length (Asp.Model.by_predicate m "component"));
      check Alcotest.bool "flow edge" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "flow(in_valve, tank)"));
      check Alcotest.bool "part_of" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "part_of(email, ews)"));
      check Alcotest.bool "fault mode from property" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "fault_mode(wls, stuck_at)"))
  | _ -> fail "expected one model"

let test_to_asp_queryable () =
  (* the generated facts compose with analysis rules *)
  let p =
    Asp.Program.append
      (Archimate.To_asp.facts (tank_model ()))
      (Asp.Parser.parse_program
         "reaches(X,Y) :- flow(X,Y). reaches(X,Z) :- reaches(X,Y), flow(Y,Z).")
  in
  match Asp.Solver.solve (Asp.Grounder.ground p) with
  | [ m ] ->
      check Alcotest.bool "sensor reaches tank" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "reaches(wls, tank)"))
  | _ -> fail "expected one model"

let test_sanitize () =
  check Alcotest.string "lowercase" "water_tank"
    (Archimate.To_asp.sanitize "Water Tank");
  check Alcotest.string "leading digit" "x3com" (Archimate.To_asp.sanitize "3com");
  check Alcotest.string "empty" "x" (Archimate.To_asp.sanitize "")

let suites =
  [
    ( "archimate.element",
      [
        Alcotest.test_case "layers" `Quick test_element_layers;
        Alcotest.test_case "kind roundtrip" `Quick test_element_kind_roundtrip;
        Alcotest.test_case "properties" `Quick test_element_properties;
        Alcotest.test_case "relationship kinds" `Quick
          test_relationship_roundtrip;
      ] );
    ( "archimate.model",
      [
        Alcotest.test_case "construction" `Quick test_model_construction;
        Alcotest.test_case "duplicates & dangling" `Quick
          test_model_rejects_duplicates_and_dangling;
        Alcotest.test_case "queries" `Quick test_model_queries;
        Alcotest.test_case "remove cleans rels" `Quick
          test_model_remove_element_cleans_relationships;
        Alcotest.test_case "merge" `Quick test_model_merge;
      ] );
    ( "archimate.aspect",
      [
        Alcotest.test_case "overlapping merge" `Quick
          test_aspect_merge_overlapping;
        Alcotest.test_case "name conflict" `Quick test_aspect_merge_name_conflict;
        Alcotest.test_case "property conflict" `Quick
          test_aspect_merge_property_conflict;
        Alcotest.test_case "relationship conflict" `Quick
          test_aspect_merge_relationship_conflict;
      ] );
    ( "archimate.catalog",
      [
        Alcotest.test_case "instantiate" `Quick test_catalog_instantiate;
        Alcotest.test_case "unknown type" `Quick test_catalog_unknown;
        Alcotest.test_case "extension" `Quick test_catalog_extension;
      ] );
    ( "archimate.validate",
      [
        Alcotest.test_case "clean model" `Quick test_validate_clean_model;
        Alcotest.test_case "composition cycle" `Quick
          test_validate_composition_cycle;
        Alcotest.test_case "warnings" `Quick test_validate_warnings;
      ] );
    ( "archimate.text",
      [
        Alcotest.test_case "roundtrip" `Quick test_text_roundtrip;
        Alcotest.test_case "literal" `Quick test_text_parse_literal;
        Alcotest.test_case "shipped model file" `Quick
          test_text_shipped_model_file;
        Alcotest.test_case "errors" `Quick test_text_errors;
      ] );
    ( "archimate.to_asp",
      [
        Alcotest.test_case "facts" `Quick test_to_asp_facts;
        Alcotest.test_case "composes with rules" `Quick test_to_asp_queryable;
        Alcotest.test_case "sanitize" `Quick test_sanitize;
      ] );
  ]
