test/test_rough.ml: Alcotest List Option QCheck QCheck_alcotest Qual Rough String
