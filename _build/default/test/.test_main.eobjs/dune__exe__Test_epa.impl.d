test/test_epa.ml: Alcotest Epa List Ltl QCheck QCheck_alcotest Qual
