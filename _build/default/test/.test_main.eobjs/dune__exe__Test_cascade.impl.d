test/test_cascade.ml: Alcotest Archimate Asp Cpsrisk Epa List Printf String
