test/test_ltl.ml: Alcotest List Ltl Printf QCheck QCheck_alcotest Qual
