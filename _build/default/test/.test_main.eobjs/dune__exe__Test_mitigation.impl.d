test/test_mitigation.ml: Alcotest List Mitigation Printf QCheck QCheck_alcotest
