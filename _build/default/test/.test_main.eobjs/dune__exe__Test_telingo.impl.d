test/test_telingo.ml: Alcotest Asp List Ltl Printf QCheck QCheck_alcotest Qual Telingo
