test/test_archimate.ml: Alcotest Archimate Asp Aspect Element Format Fun List Model Printf Relationship String Validate
