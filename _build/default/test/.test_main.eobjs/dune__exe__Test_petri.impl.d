test/test_petri.ml: Alcotest List Petri QCheck QCheck_alcotest
