test/test_threatdb.ml: Alcotest Asp Float List Printf QCheck QCheck_alcotest Qual Threatdb
