test/test_asp.ml: Alcotest Asp List Printf QCheck QCheck_alcotest String
