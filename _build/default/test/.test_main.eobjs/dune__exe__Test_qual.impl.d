test/test_qual.ml: Alcotest List Option QCheck QCheck_alcotest Qual
