test/test_aggregates.ml: Alcotest Asp List Printf QCheck QCheck_alcotest
