test/test_quant.ml: Alcotest Float Fta List Markov QCheck QCheck_alcotest Qual Risk
