test/test_sensitivity.ml: Alcotest List Option QCheck QCheck_alcotest Qual Risk Sensitivity String
