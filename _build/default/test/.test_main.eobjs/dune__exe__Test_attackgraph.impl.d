test/test_attackgraph.ml: Alcotest Archimate Attackgraph Cpsrisk List Qual String Threatdb
