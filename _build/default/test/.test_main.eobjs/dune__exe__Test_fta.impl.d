test/test_fta.ml: Alcotest Epa Fta List QCheck QCheck_alcotest Qual String
