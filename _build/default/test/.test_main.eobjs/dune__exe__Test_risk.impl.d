test/test_risk.ml: Alcotest List Option Printf QCheck QCheck_alcotest Qual Risk String
