test/test_cpsrisk.ml: Alcotest Archimate Asp Cegar Cpsrisk Epa List Ltl Mitigation Option Printf QCheck QCheck_alcotest Qual String
