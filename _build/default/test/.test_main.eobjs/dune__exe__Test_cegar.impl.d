test/test_cegar.ml: Alcotest Archimate Cegar Element Int List Model QCheck QCheck_alcotest Relationship String
