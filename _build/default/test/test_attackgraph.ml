(* Tests for attack-graph generation (lib/attackgraph). *)

let check = Alcotest.check
let fail = Alcotest.fail

let graph = Attackgraph.Graph.generate Cpsrisk.Water_tank.refined_model

let find_node component tid =
  List.find_opt
    (fun (n : Attackgraph.Graph.node) ->
      n.Attackgraph.Graph.component = component
      && n.Attackgraph.Graph.technique.Threatdb.Attck.id = tid)
    (Attackgraph.Graph.nodes graph)

let test_generation_basics () =
  let n_nodes, n_edges = Attackgraph.Graph.size graph in
  check Alcotest.bool "nodes exist" true (n_nodes > 10);
  check Alcotest.bool "edges exist" true (n_edges > 10);
  (* untyped elements (operator) contribute no nodes *)
  check Alcotest.bool "operator absent" true
    (List.for_all
       (fun (n : Attackgraph.Graph.node) -> n.Attackgraph.Graph.component <> "operator")
       (Attackgraph.Graph.nodes graph))

let test_entry_and_goal_nodes () =
  let entries = Attackgraph.Graph.entry_nodes graph in
  check Alcotest.bool "spearphishing at the email client" true
    (List.exists
       (fun (n : Attackgraph.Graph.node) ->
         n.Attackgraph.Graph.component = "email"
         && n.Attackgraph.Graph.technique.Threatdb.Attck.id = "T0865")
       entries);
  let goals = Attackgraph.Graph.goal_nodes graph in
  check Alcotest.bool "loss of view at the HMI" true
    (List.exists
       (fun (n : Attackgraph.Graph.node) ->
         n.Attackgraph.Graph.component = "hmi"
         && n.Attackgraph.Graph.technique.Threatdb.Attck.id = "T0829")
       goals)

let test_stage_ordering_respected () =
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "edges go forward in the kill chain" true
        (Attackgraph.Graph.stage a.Attackgraph.Graph.technique
        < Attackgraph.Graph.stage b.Attackgraph.Graph.technique))
    (Attackgraph.Graph.edges graph)

let test_paths_spearphish_to_manipulation () =
  (* the paper's narrative: spam link on the workstation ends in actuator
     manipulation *)
  match
    ( find_node "email" "T0865",
      find_node "in_valve_ctrl" "T0831" )
  with
  | Some source, Some sink ->
      let paths = Attackgraph.Graph.paths graph ~source ~sink in
      check Alcotest.bool "at least one path" true (paths <> []);
      List.iter
        (fun path ->
          check Alcotest.bool "path starts at source" true
            (Attackgraph.Graph.node_equal (List.hd path) source);
          check Alcotest.bool "path ends at sink" true
            (Attackgraph.Graph.node_equal
               (List.nth path (List.length path - 1))
               sink))
        paths
  | _ -> fail "expected the source and sink nodes to exist"

let test_paths_no_duplicates () =
  match find_node "email" "T0865" with
  | Some source ->
      List.iter
        (fun sink ->
          List.iter
            (fun path ->
              let rec distinct = function
                | [] -> true
                | n :: rest ->
                    (not (List.exists (Attackgraph.Graph.node_equal n) rest))
                    && distinct rest
              in
              check Alcotest.bool "simple path" true (distinct path))
            (Attackgraph.Graph.paths graph ~source ~sink))
        (Attackgraph.Graph.goal_nodes graph)
  | None -> fail "source missing"

let test_attack_scenarios_space () =
  let scenarios = Attackgraph.Graph.attack_scenarios ~max_length:5 graph in
  check Alcotest.bool "non-empty scenario space" true (scenarios <> []);
  (* severity is defined for each scenario *)
  List.iter
    (fun path ->
      check Alcotest.bool "positive severity" true
        (Qual.Level.compare (Attackgraph.Graph.severity path) Qual.Level.Very_low
        >= 0))
    scenarios

let test_severity_monotone_in_path_extension () =
  let scenarios = Attackgraph.Graph.attack_scenarios ~max_length:4 graph in
  List.iter
    (fun path ->
      match path with
      | _ :: rest when rest <> [] ->
          check Alcotest.bool "prefix severity <= path severity" true
            (Qual.Level.compare
               (Attackgraph.Graph.severity rest)
               (Attackgraph.Graph.severity path)
            <= 0)
      | _ -> ())
    scenarios

let test_to_dot () =
  let dot = Attackgraph.Graph.to_dot graph in
  check Alcotest.bool "digraph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  check Alcotest.bool "mentions T0865" true
    (let needle = "T0865" in
     let n = String.length needle and h = String.length dot in
     let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
     go 0)

let test_untyped_model_is_empty () =
  let m =
    Archimate.Model.empty ~name:"untyped"
    |> Archimate.Model.add_element
         (Archimate.Element.make ~id:"x" ~name:"X" ~kind:Archimate.Element.Node ())
  in
  let g = Attackgraph.Graph.generate m in
  check (Alcotest.pair Alcotest.int Alcotest.int) "empty graph" (0, 0)
    (Attackgraph.Graph.size g)

let suites =
  [
    ( "attackgraph",
      [
        Alcotest.test_case "generation basics" `Quick test_generation_basics;
        Alcotest.test_case "entry & goal nodes" `Quick test_entry_and_goal_nodes;
        Alcotest.test_case "stage ordering" `Quick test_stage_ordering_respected;
        Alcotest.test_case "spearphish -> manipulation path" `Quick
          test_paths_spearphish_to_manipulation;
        Alcotest.test_case "simple paths" `Quick test_paths_no_duplicates;
        Alcotest.test_case "scenario space" `Quick test_attack_scenarios_space;
        Alcotest.test_case "severity monotone" `Quick
          test_severity_monotone_in_path_extension;
        Alcotest.test_case "dot output" `Quick test_to_dot;
        Alcotest.test_case "untyped model" `Quick test_untyped_model_is_empty;
      ] );
  ]
