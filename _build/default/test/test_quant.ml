(* Tests for the quantitative layers: fault-tree probabilities (Fta.Quant),
   Markov chains (Markov.Dtmc) and loss intervals (Risk.Loss). *)

let check = Alcotest.check
let fail = Alcotest.fail

let feq = Alcotest.float 1e-9

(* -------------------------------------------------------------------- *)
(* Fta.Quant                                                             *)
(* -------------------------------------------------------------------- *)

let p_of assoc e = List.assoc e assoc

let test_quant_or_gate () =
  let t = Fta.Tree.Or [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ] in
  (* P(a or b) = 1 - (1-pa)(1-pb) *)
  let p = p_of [ ("a", 0.1); ("b", 0.2) ] in
  check feq "or" (1. -. (0.9 *. 0.8)) (Fta.Quant.top_event_probability t p)

let test_quant_and_gate () =
  let t = Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ] in
  let p = p_of [ ("a", 0.1); ("b", 0.2) ] in
  check feq "and" 0.02 (Fta.Quant.top_event_probability t p)

let test_quant_shared_event_exact () =
  (* (a&b)|(a&c): naive cut-set sum would double-count through a *)
  let t =
    Fta.Tree.Or
      [
        Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ];
        Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "c" ];
      ]
  in
  let p = p_of [ ("a", 0.5); ("b", 0.5); ("c", 0.5) ] in
  (* P(a & (b|c)) = 0.5 * 0.75 *)
  check feq "inclusion-exclusion" 0.375 (Fta.Quant.top_event_probability t p)

let test_quant_k_of_n () =
  let t =
    Fta.Tree.K_of_n
      (2, [ Fta.Tree.Basic "x"; Fta.Tree.Basic "y"; Fta.Tree.Basic "z" ])
  in
  let p _ = 0.5 in
  (* exactly-2 (3 ways, 1/8 each) + all-3 (1/8) = 0.5 *)
  check feq "2 of 3 at p=0.5" 0.5 (Fta.Quant.top_event_probability t p)

let test_quant_validation () =
  (match
     Fta.Quant.top_event_probability (Fta.Tree.Basic "a") (fun _ -> 1.5)
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "probability > 1 accepted");
  let big =
    Fta.Tree.Or (List.init 21 (fun i -> Fta.Tree.Basic (string_of_int i)))
  in
  match Fta.Quant.top_event_probability big (fun _ -> 0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "21 events accepted"

let test_quant_scenario_probability_paper () =
  (* §VII: "the potential probability of the simultaneous occurrence of all
     faults is much lower" — S5 {F2,F3} vs S7 {F1,F2,F3} *)
  let all = [ "F1"; "F2"; "F3"; "F4" ] in
  let p _ = 0.1 in
  let s5 = Fta.Quant.scenario_probability ~all p [ "F2"; "F3" ] in
  let s7 = Fta.Quant.scenario_probability ~all p [ "F1"; "F2"; "F3" ] in
  check Alcotest.bool "S5 more likely than S7" true (s5 > s7);
  check feq "S5 value" (0.9 *. 0.1 *. 0.1 *. 0.9) s5;
  check feq "S7 value" (0.1 *. 0.1 *. 0.1 *. 0.9) s7

let test_quant_birnbaum () =
  (* top = b | (a & c): b is the single point of failure, most important
     at small probabilities *)
  let t =
    Fta.Tree.Or
      [
        Fta.Tree.Basic "b";
        Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "c" ];
      ]
  in
  let p _ = 0.01 in
  match Fta.Quant.birnbaum_importance t p with
  | (first, _) :: _ -> check Alcotest.string "b most important" "b" first
  | [] -> fail "no importances"

let test_quant_fussell_vesely () =
  let t = Fta.Tree.Or [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ] in
  let p = p_of [ ("a", 0.2); ("b", 0.0) ] in
  (match Fta.Quant.fussell_vesely t p with
  | (e1, v1) :: (_, v2) :: [] ->
      check Alcotest.string "a carries all the risk" "a" e1;
      check feq "full contribution" 1.0 v1;
      check feq "no contribution" 0.0 v2
  | _ -> fail "expected two entries");
  (* impossible top event: all zeros *)
  let all_zero = Fta.Quant.fussell_vesely t (fun _ -> 0.) in
  List.iter (fun (_, v) -> check feq "zero top" 0.0 v) all_zero

let prop_quant_monotone =
  QCheck.Test.make ~name:"quant: top-event probability monotone in each p"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         tup3 (float_bound_exclusive 1.) (float_bound_exclusive 1.)
           (float_bound_exclusive 1.)))
    (fun (pa, pb, pc) ->
      let t =
        Fta.Tree.Or
          [
            Fta.Tree.And [ Fta.Tree.Basic "a"; Fta.Tree.Basic "b" ];
            Fta.Tree.Basic "c";
          ]
      in
      let p = p_of [ ("a", pa); ("b", pb); ("c", pc) ] in
      let bumped e = if e = "a" then Float.min 1. (pa +. 0.1) else p e in
      Fta.Quant.top_event_probability t bumped
      >= Fta.Quant.top_event_probability t p -. 1e-12)

(* -------------------------------------------------------------------- *)
(* Markov.Dtmc                                                           *)
(* -------------------------------------------------------------------- *)

let simple_chain =
  Markov.Dtmc.make
    ~states:[ "ok"; "degraded"; "failed" ]
    ~transitions:
      [
        ("ok", "degraded", 0.1);
        ("degraded", "ok", 0.5);
        ("degraded", "failed", 0.2);
        ("failed", "failed", 1.0);
      ]

let test_dtmc_self_loop_completion () =
  check feq "ok self loop" 0.9 (Markov.Dtmc.probability simple_chain "ok" "ok");
  check feq "degraded self loop" 0.3
    (Markov.Dtmc.probability simple_chain "degraded" "degraded")

let test_dtmc_validation () =
  (match
     Markov.Dtmc.make ~states:[ "a" ] ~transitions:[ ("a", "b", 0.5) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown state accepted");
  (match
     Markov.Dtmc.make ~states:[ "a"; "b" ]
       ~transitions:[ ("a", "b", 0.7); ("a", "a", 0.7) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "row sum > 1 accepted");
  match
    Markov.Dtmc.make ~states:[ "a"; "b" ]
      ~transitions:[ ("a", "b", 0.5); ("a", "b", 0.3) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "duplicate edge accepted"

let test_dtmc_transient_mass_conserved () =
  let dist = Markov.Dtmc.transient simple_chain ~init:"ok" ~steps:10 in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
  check (Alcotest.float 1e-9) "mass 1" 1.0 total;
  check Alcotest.bool "some failure mass" true
    (List.assoc "failed" dist > 0.)

let test_dtmc_absorbing () =
  check (Alcotest.list Alcotest.string) "failed absorbs" [ "failed" ]
    (Markov.Dtmc.absorbing simple_chain)

let test_dtmc_absorption_probability () =
  (* failed is the only absorbing state of an irreducible-otherwise chain:
     absorption is certain *)
  check (Alcotest.float 1e-6) "eventually fails" 1.0
    (Markov.Dtmc.absorption_probability simple_chain ~init:"ok" ~target:"failed");
  match
    Markov.Dtmc.absorption_probability simple_chain ~init:"ok" ~target:"degraded"
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-absorbing target accepted"

let test_dtmc_absorption_partial () =
  (* two absorbing states: probability splits *)
  let t =
    Markov.Dtmc.make
      ~states:[ "s"; "good"; "bad" ]
      ~transitions:
        [
          ("s", "good", 0.3); ("s", "bad", 0.7);
          ("good", "good", 1.0); ("bad", "bad", 1.0);
        ]
  in
  check (Alcotest.float 1e-9) "to good" 0.3
    (Markov.Dtmc.absorption_probability t ~init:"s" ~target:"good");
  check (Alcotest.float 1e-9) "to bad" 0.7
    (Markov.Dtmc.absorption_probability t ~init:"s" ~target:"bad");
  check Alcotest.bool "expected steps infinite when not certain" true
    (Markov.Dtmc.expected_steps_to t ~init:"s" ~target:"good" = infinity)

let test_dtmc_expected_steps () =
  (* geometric: p=0.5 to absorb each step -> expected 2 steps *)
  let t =
    Markov.Dtmc.make ~states:[ "s"; "done" ]
      ~transitions:[ ("s", "done", 0.5); ("done", "done", 1.0) ]
  in
  check (Alcotest.float 1e-6) "geometric mean" 2.0
    (Markov.Dtmc.expected_steps_to t ~init:"s" ~target:"done")

let prop_dtmc_transient_stochastic =
  QCheck.Test.make ~name:"dtmc: transient distributions stay stochastic"
    ~count:100
    (QCheck.make QCheck.Gen.(pair (float_bound_exclusive 1.) (int_range 0 30)))
    (fun (p, steps) ->
      let t =
        Markov.Dtmc.make ~states:[ "a"; "b" ]
          ~transitions:[ ("a", "b", p); ("b", "a", 1. -. p) ]
      in
      let dist = Markov.Dtmc.transient t ~init:"a" ~steps in
      let total = List.fold_left (fun acc (_, q) -> acc +. q) 0. dist in
      Float.abs (total -. 1.) < 1e-9
      && List.for_all (fun (_, q) -> q >= -1e-12) dist)

(* -------------------------------------------------------------------- *)
(* Risk.Loss                                                             *)
(* -------------------------------------------------------------------- *)

let test_loss_intervals () =
  let a = Risk.Loss.interval 10. 20. in
  let b = Risk.Loss.interval 1. 2. in
  let s = Risk.Loss.add a b in
  check feq "lo" 11. s.Risk.Loss.lo;
  check feq "hi" 22. s.Risk.Loss.hi;
  check feq "midpoint" 16.5 (Risk.Loss.midpoint s);
  check feq "width" 11. (Risk.Loss.width s);
  check Alcotest.bool "contains" true (Risk.Loss.contains s 15.);
  match Risk.Loss.interval 5. 1. with
  | exception Invalid_argument _ -> ()
  | _ -> fail "inverted interval accepted"

let test_loss_bands_ordered () =
  (* band upper bounds strictly increase with the category *)
  let his =
    List.map (fun l -> (Risk.Loss.default_bands l).Risk.Loss.hi) Qual.Level.all
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "increasing" true (increasing his)

let test_loss_expected () =
  let e =
    Risk.Loss.expected_loss ~probability:0.01 ~magnitude:Qual.Level.Very_high ()
  in
  check feq "lo" 10_000. e.Risk.Loss.lo;
  check feq "hi" 100_000. e.Risk.Loss.hi;
  match Risk.Loss.expected_loss ~probability:1.2 ~magnitude:Qual.Level.Low () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "probability > 1 accepted"

let test_loss_exposure () =
  let exposure =
    Risk.Loss.annual_loss_exposure
      [ (0.5, Qual.Level.Low); (0.1, Qual.Level.High) ]
  in
  check feq "lo" ((0.5 *. 1_000.) +. (0.1 *. 100_000.)) exposure.Risk.Loss.lo;
  check feq "hi" ((0.5 *. 10_000.) +. (0.1 *. 1_000_000.)) exposure.Risk.Loss.hi;
  let empty = Risk.Loss.total [] in
  check feq "empty total" 0. empty.Risk.Loss.hi

(* water-tank quantitative cross-check: expected ordering of scenario risk *)
let test_loss_water_tank_ranking () =
  let all = [ "F1"; "F2"; "F3"; "F4" ] in
  let p = function "F4" -> 0.05 | _ -> 0.02 in
  let s5 = Fta.Quant.scenario_probability ~all p [ "F2"; "F3" ] in
  let s7 = Fta.Quant.scenario_probability ~all p [ "F1"; "F2"; "F3" ] in
  let loss prob =
    Risk.Loss.expected_loss ~probability:prob ~magnitude:Qual.Level.Very_high ()
  in
  check Alcotest.bool "S5 expected loss dominates S7" true
    (Risk.Loss.midpoint (loss s5) > Risk.Loss.midpoint (loss s7))

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "fta.quant",
      [
        Alcotest.test_case "or gate" `Quick test_quant_or_gate;
        Alcotest.test_case "and gate" `Quick test_quant_and_gate;
        Alcotest.test_case "shared event exact" `Quick
          test_quant_shared_event_exact;
        Alcotest.test_case "k of n" `Quick test_quant_k_of_n;
        Alcotest.test_case "validation" `Quick test_quant_validation;
        Alcotest.test_case "S5 vs S7 probability" `Quick
          test_quant_scenario_probability_paper;
        Alcotest.test_case "birnbaum" `Quick test_quant_birnbaum;
        Alcotest.test_case "fussell-vesely" `Quick test_quant_fussell_vesely;
        qcheck prop_quant_monotone;
      ] );
    ( "markov.dtmc",
      [
        Alcotest.test_case "self-loop completion" `Quick
          test_dtmc_self_loop_completion;
        Alcotest.test_case "validation" `Quick test_dtmc_validation;
        Alcotest.test_case "transient mass" `Quick
          test_dtmc_transient_mass_conserved;
        Alcotest.test_case "absorbing" `Quick test_dtmc_absorbing;
        Alcotest.test_case "absorption probability" `Quick
          test_dtmc_absorption_probability;
        Alcotest.test_case "partial absorption" `Quick
          test_dtmc_absorption_partial;
        Alcotest.test_case "expected steps" `Quick test_dtmc_expected_steps;
        qcheck prop_dtmc_transient_stochastic;
      ] );
    ( "risk.loss",
      [
        Alcotest.test_case "intervals" `Quick test_loss_intervals;
        Alcotest.test_case "bands ordered" `Quick test_loss_bands_ordered;
        Alcotest.test_case "expected loss" `Quick test_loss_expected;
        Alcotest.test_case "exposure" `Quick test_loss_exposure;
        Alcotest.test_case "water-tank ranking" `Quick
          test_loss_water_tank_ranking;
      ] );
  ]
