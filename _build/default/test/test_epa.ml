(* Tests for the EPA core (lib/epa). *)

let check = Alcotest.check
let fail = Alcotest.fail

let f1 =
  Epa.Fault.make ~id:"F1" ~component:"in_valve"
    ~mode:(Epa.Fault.Stuck_at "open") ()

let f2 =
  Epa.Fault.make ~id:"F2" ~component:"out_valve"
    ~mode:(Epa.Fault.Stuck_at "closed") ()

let f3 = Epa.Fault.make ~id:"F3" ~component:"hmi" ~mode:Epa.Fault.Omission ()

let f4 =
  Epa.Fault.make ~id:"F4" ~component:"ews" ~mode:Epa.Fault.Compromise
    ~induces:[ "F1"; "F2"; "F3" ] ()

let catalog = [ f1; f2; f3; f4 ]

(* -------------------------------------------------------------------- *)
(* Fault                                                                 *)
(* -------------------------------------------------------------------- *)

let test_fault_close_induced () =
  check (Alcotest.list Alcotest.string) "F4 induces F1-F3"
    [ "F1"; "F2"; "F3"; "F4" ]
    (Epa.Fault.close_induced catalog [ "F4" ]);
  check (Alcotest.list Alcotest.string) "no duplication"
    [ "F1"; "F2"; "F4" ]
    (Epa.Fault.close_induced [ f1; f2; Epa.Fault.make ~id:"F4" ~component:"e" ~mode:Epa.Fault.Compromise ~induces:[ "F1"; "F2" ] () ] [ "F4"; "F1" ])

let test_fault_close_induced_transitive () =
  let a = Epa.Fault.make ~id:"A" ~component:"x" ~mode:Epa.Fault.Omission ~induces:[ "B" ] () in
  let b = Epa.Fault.make ~id:"B" ~component:"y" ~mode:Epa.Fault.Omission ~induces:[ "C" ] () in
  let c = Epa.Fault.make ~id:"C" ~component:"z" ~mode:Epa.Fault.Omission () in
  check (Alcotest.list Alcotest.string) "transitive" [ "A"; "B"; "C" ]
    (Epa.Fault.close_induced [ a; b; c ] [ "A" ])

let test_fault_close_induced_cyclic () =
  let a = Epa.Fault.make ~id:"A" ~component:"x" ~mode:Epa.Fault.Omission ~induces:[ "B" ] () in
  let b = Epa.Fault.make ~id:"B" ~component:"y" ~mode:Epa.Fault.Omission ~induces:[ "A" ] () in
  check (Alcotest.list Alcotest.string) "cycle terminates" [ "A"; "B" ]
    (Epa.Fault.close_induced [ a; b ] [ "A" ])

let test_fault_mode_strings () =
  check Alcotest.string "stuck at" "stuck_at_open"
    (Epa.Fault.mode_to_string (Epa.Fault.Stuck_at "open"));
  check Alcotest.string "compromise" "compromise"
    (Epa.Fault.mode_to_string Epa.Fault.Compromise)

(* -------------------------------------------------------------------- *)
(* Static propagation                                                    *)
(* -------------------------------------------------------------------- *)

(* sensor -> controller -> valve -> tank, plus ews -> controller *)
let network =
  Epa.Propagation.make_network
    ~components:[ "sensor"; "controller"; "valve"; "tank"; "ews" ]
    ~edges:
      [
        ("sensor", "controller");
        ("controller", "valve");
        ("valve", "tank");
        ("ews", "controller");
      ]
    ()

let test_propagation_reaches_tank () =
  let fault =
    Epa.Fault.make ~id:"FS" ~component:"sensor" ~mode:(Epa.Fault.Stuck_at "low") ()
  in
  let r = Epa.Propagation.analyze network ~active:[ fault ] in
  check Alcotest.bool "tank receives value error" true
    (List.mem Epa.Propagation.Value_err (Epa.Propagation.errors_at "tank" r));
  check (Alcotest.list Alcotest.string) "affected downstream"
    [ "controller"; "sensor"; "tank"; "valve" ]
    (Epa.Propagation.affected r)

let test_propagation_path () =
  let fault =
    Epa.Fault.make ~id:"FS" ~component:"sensor" ~mode:(Epa.Fault.Stuck_at "low") ()
  in
  let r = Epa.Propagation.analyze network ~active:[ fault ] in
  let path = Epa.Propagation.path_to "tank" Epa.Propagation.Value_err r in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "full chain"
    [
      ("sensor", "value"); ("controller", "value"); ("valve", "value");
      ("tank", "value");
    ]
    (List.map
       (fun (c, e) -> (c, Epa.Propagation.error_class_to_string e))
       path)

let test_propagation_no_faults () =
  let r = Epa.Propagation.analyze network ~active:[] in
  check (Alcotest.list Alcotest.string) "nothing affected" []
    (Epa.Propagation.affected r);
  check (Alcotest.list Alcotest.string) "no path" []
    (List.map fst (Epa.Propagation.path_to "tank" Epa.Propagation.Value_err r))

let test_propagation_compromise_classes () =
  let fault = Epa.Fault.make ~id:"FE" ~component:"ews" ~mode:Epa.Fault.Compromise () in
  let r = Epa.Propagation.analyze network ~active:[ fault ] in
  let classes = Epa.Propagation.errors_at "ews" r in
  check Alcotest.int "compromise emits three classes" 3 (List.length classes);
  (* sensor is upstream-only: unaffected *)
  check (Alcotest.list Alcotest.string) "sensor clean" []
    (List.map Epa.Propagation.error_class_to_string
       (Epa.Propagation.errors_at "sensor" r))

let test_propagation_custom_behaviour () =
  (* a filter that stops value errors but passes omissions *)
  let filter ~incoming ~faults:_ =
    List.filter (fun e -> e <> Epa.Propagation.Value_err) incoming
  in
  let net =
    Epa.Propagation.make_network
      ~behaviours:[ ("filter", filter) ]
      ~components:[ "src"; "filter"; "sink" ]
      ~edges:[ ("src", "filter"); ("filter", "sink") ]
      ()
  in
  let vf = Epa.Fault.make ~id:"V" ~component:"src" ~mode:Epa.Fault.Value_error () in
  let om = Epa.Fault.make ~id:"O" ~component:"src" ~mode:Epa.Fault.Omission () in
  let r = Epa.Propagation.analyze net ~active:[ vf; om ] in
  check Alcotest.bool "value stopped" false
    (List.mem Epa.Propagation.Value_err (Epa.Propagation.errors_at "sink" r));
  check Alcotest.bool "omission passes" true
    (List.mem Epa.Propagation.Omission_err (Epa.Propagation.errors_at "sink" r))

let test_propagation_rejects_unknown () =
  match
    Epa.Propagation.make_network ~components:[ "a" ] ~edges:[ ("a", "b") ] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "edge to unknown component accepted"

let prop_propagation_monotone =
  (* adding faults never removes derived errors *)
  let fault_gen =
    QCheck.Gen.(
      map2
        (fun comp mode -> Epa.Fault.make ~id:(comp ^ "_f") ~component:comp ~mode ())
        (oneofl [ "sensor"; "controller"; "valve"; "ews" ])
        (oneofl
           [
             Epa.Fault.Omission; Epa.Fault.Value_error; Epa.Fault.Compromise;
             Epa.Fault.Timing_error;
           ]))
  in
  QCheck.Test.make ~name:"propagation: monotone in the active-fault set"
    ~count:100
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 3) fault_gen) fault_gen))
    (fun (faults, extra) ->
      let r1 = Epa.Propagation.analyze network ~active:faults in
      let r2 = Epa.Propagation.analyze network ~active:(extra :: faults) in
      List.for_all
        (fun c ->
          List.for_all
            (fun e -> List.mem e (Epa.Propagation.errors_at c r2))
            (Epa.Propagation.errors_at c r1))
        [ "sensor"; "controller"; "valve"; "tank"; "ews" ])

(* -------------------------------------------------------------------- *)
(* Scenario                                                              *)
(* -------------------------------------------------------------------- *)

let test_scenario_all_combinations () =
  let scenarios = Epa.Scenario.all_combinations catalog in
  check Alcotest.int "2^4 subsets" 16 (List.length scenarios);
  check (Alcotest.list Alcotest.string) "first is empty" []
    (List.hd scenarios).Epa.Scenario.faults;
  let bounded = Epa.Scenario.all_combinations ~max_faults:1 catalog in
  check Alcotest.int "empty + singletons" 5 (List.length bounded)

let test_scenario_effective_faults () =
  let blocks = function "M1" | "M2" -> [ "F4" ] | _ -> [] in
  (* without mitigation, F4 expands *)
  let s = Epa.Scenario.make [ "F4" ] in
  check (Alcotest.list Alcotest.string) "expands"
    [ "F1"; "F2"; "F3"; "F4" ]
    (Epa.Scenario.effective_faults ~catalog ~blocks s);
  (* with mitigation, F4 is blocked entirely *)
  let s = Epa.Scenario.make ~mitigations:[ "M1" ] [ "F4" ] in
  check (Alcotest.list Alcotest.string) "blocked" []
    (Epa.Scenario.effective_faults ~catalog ~blocks s);
  (* physical faults unaffected by M1 *)
  let s = Epa.Scenario.make ~mitigations:[ "M1" ] [ "F2"; "F3" ] in
  check (Alcotest.list Alcotest.string) "others pass" [ "F2"; "F3" ]
    (Epa.Scenario.effective_faults ~catalog ~blocks s)

let test_scenario_blocked_induced () =
  (* a mitigation blocking an induced fault keeps it out even when the
     inducer activates *)
  let blocks = function "MX" -> [ "F3" ] | _ -> [] in
  let s = Epa.Scenario.make ~mitigations:[ "MX" ] [ "F4" ] in
  check (Alcotest.list Alcotest.string) "F3 filtered"
    [ "F1"; "F2"; "F4" ]
    (Epa.Scenario.effective_faults ~catalog ~blocks s)

let test_scenario_label () =
  check Alcotest.string "label" "{F1,F2}+{M1}"
    (Epa.Scenario.label (Epa.Scenario.make ~mitigations:[ "M1" ] [ "F2"; "F1" ]))

(* -------------------------------------------------------------------- *)
(* Dynamics + analysis on a miniature system                             *)
(* -------------------------------------------------------------------- *)

(* A buffer that overflows unless a drain compensates; the drain fails
   under fault FD; an alarm reports overflow unless FA is active. *)
let mini_catalog =
  [
    Epa.Fault.make ~id:"FD" ~component:"drain" ~mode:(Epa.Fault.Stuck_at "off") ();
    Epa.Fault.make ~id:"FA" ~component:"alarm" ~mode:Epa.Fault.Omission ();
    Epa.Fault.make ~id:"FC" ~component:"ctrl" ~mode:Epa.Fault.Compromise
      ~induces:[ "FD"; "FA" ] ();
  ]

let mini_build ~faults =
  let drain_broken = List.mem "FD" faults in
  let alarm_broken = List.mem "FA" faults in
  let init =
    Qual.Qstate.of_list [ ("fill", "low"); ("alarm", "false") ]
  in
  let step s =
    let fill = Qual.Qstate.get "fill" s in
    let fill' =
      match fill with
      | "low" -> "high"
      | "high" -> if drain_broken then "overflow" else "low"
      | other -> other (* overflow absorbs *)
    in
    let alarm' =
      if fill' = "overflow" && not alarm_broken then "true"
      else Qual.Qstate.get "alarm" s
    in
    Qual.Qstate.of_list [ ("fill", fill'); ("alarm", alarm') ]
  in
  Epa.Dynamics.to_ts (Epa.Dynamics.make ~init ~step)

let mini_requirements =
  [
    Epa.Requirement.make ~id:"R1" ~description:"no overflow"
      ~formula:"G !fill=overflow";
    Epa.Requirement.make ~id:"R2" ~description:"overflow is alarmed"
      ~formula:"G (fill=overflow -> F alarm)";
  ]

let mini_system =
  {
    Epa.Analysis.catalog = mini_catalog;
    blocks = (function "M" -> [ "FC" ] | _ -> []);
    build = mini_build;
    requirements = mini_requirements;
  }

let test_dynamics_run () =
  let d =
    Epa.Dynamics.make
      ~init:(Qual.Qstate.of_list [ ("fill", "low"); ("alarm", "false") ])
      ~step:(fun s ->
        Qual.Qstate.set "fill"
          (match Qual.Qstate.get "fill" s with "low" -> "high" | _ -> "low")
          s)
  in
  let tr = Epa.Dynamics.run d in
  check Alcotest.bool "at least 3 states" true (Ltl.Trace.length tr >= 3)

let test_analysis_fault_free_is_safe () =
  let row = Epa.Analysis.run_scenario mini_system (Epa.Scenario.make []) in
  check (Alcotest.list Alcotest.string) "no violations" []
    (Epa.Analysis.violations row)

let test_analysis_drain_fault_overflows () =
  let row = Epa.Analysis.run_scenario mini_system (Epa.Scenario.make [ "FD" ]) in
  check (Alcotest.list Alcotest.string) "R1 only" [ "R1" ]
    (Epa.Analysis.violations row)

let test_analysis_double_fault_loses_alarm () =
  let row =
    Epa.Analysis.run_scenario mini_system (Epa.Scenario.make [ "FD"; "FA" ])
  in
  check (Alcotest.list Alcotest.string) "both violated" [ "R1"; "R2" ]
    (Epa.Analysis.violations row)

let test_analysis_compromise_induces_all () =
  let row = Epa.Analysis.run_scenario mini_system (Epa.Scenario.make [ "FC" ]) in
  check (Alcotest.list Alcotest.string) "induced" [ "FA"; "FC"; "FD" ]
    row.Epa.Analysis.effective;
  check (Alcotest.list Alcotest.string) "both violated" [ "R1"; "R2" ]
    (Epa.Analysis.violations row)

let test_analysis_mitigation_blocks_compromise () =
  let row =
    Epa.Analysis.run_scenario mini_system
      (Epa.Scenario.make ~mitigations:[ "M" ] [ "FC" ])
  in
  check (Alcotest.list Alcotest.string) "nothing effective" []
    row.Epa.Analysis.effective;
  check (Alcotest.list Alcotest.string) "safe" []
    (Epa.Analysis.violations row)

let test_analysis_exhaustive_sweep () =
  let rows = Epa.Analysis.run mini_system in
  check Alcotest.int "2^3 scenarios" 8 (List.length rows);
  let hazardous = Epa.Analysis.hazardous rows in
  (* FD alone, FD+FA, FC alone, FC+FD, FC+FA, FC+FD+FA, FD... let's just
     check the count: scenarios containing FD or FC are hazardous = 6 *)
  check Alcotest.int "hazardous count" 6 (List.length hazardous)

let test_analysis_most_severe_ordering () =
  let rows = Epa.Analysis.run mini_system in
  match Epa.Analysis.most_severe rows with
  | first :: _ ->
      (* double violation with fewest faults: FC alone (1 activation) *)
      check (Alcotest.list Alcotest.string) "FC is ranked most severe"
        [ "FC" ] first.Epa.Analysis.scenario.Epa.Scenario.faults;
      check Alcotest.int "both requirements" 2
        (List.length (Epa.Analysis.violations first))
  | [] -> fail "expected hazardous rows"

let test_requirement_bad_formula () =
  match
    Epa.Requirement.make ~id:"R" ~description:"broken" ~formula:"G ("
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "bad formula accepted"

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "epa.fault",
      [
        Alcotest.test_case "close induced" `Quick test_fault_close_induced;
        Alcotest.test_case "transitive" `Quick test_fault_close_induced_transitive;
        Alcotest.test_case "cyclic" `Quick test_fault_close_induced_cyclic;
        Alcotest.test_case "mode strings" `Quick test_fault_mode_strings;
      ] );
    ( "epa.propagation",
      [
        Alcotest.test_case "reaches tank" `Quick test_propagation_reaches_tank;
        Alcotest.test_case "provenance path" `Quick test_propagation_path;
        Alcotest.test_case "no faults" `Quick test_propagation_no_faults;
        Alcotest.test_case "compromise classes" `Quick
          test_propagation_compromise_classes;
        Alcotest.test_case "custom behaviour" `Quick
          test_propagation_custom_behaviour;
        Alcotest.test_case "rejects unknown endpoints" `Quick
          test_propagation_rejects_unknown;
        qcheck prop_propagation_monotone;
      ] );
    ( "epa.scenario",
      [
        Alcotest.test_case "all combinations" `Quick
          test_scenario_all_combinations;
        Alcotest.test_case "effective faults" `Quick
          test_scenario_effective_faults;
        Alcotest.test_case "blocked induced" `Quick test_scenario_blocked_induced;
        Alcotest.test_case "label" `Quick test_scenario_label;
      ] );
    ( "epa.analysis",
      [
        Alcotest.test_case "dynamics run" `Quick test_dynamics_run;
        Alcotest.test_case "fault-free safe" `Quick
          test_analysis_fault_free_is_safe;
        Alcotest.test_case "drain fault overflows" `Quick
          test_analysis_drain_fault_overflows;
        Alcotest.test_case "double fault loses alarm" `Quick
          test_analysis_double_fault_loses_alarm;
        Alcotest.test_case "compromise induces all" `Quick
          test_analysis_compromise_induces_all;
        Alcotest.test_case "mitigation blocks compromise" `Quick
          test_analysis_mitigation_blocks_compromise;
        Alcotest.test_case "exhaustive sweep" `Quick
          test_analysis_exhaustive_sweep;
        Alcotest.test_case "severity ordering" `Quick
          test_analysis_most_severe_ordering;
        Alcotest.test_case "bad formula rejected" `Quick
          test_requirement_bad_formula;
      ] );
  ]
