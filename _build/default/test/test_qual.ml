(* Tests for the qualitative-reasoning substrate (lib/qual). *)

let check = Alcotest.check
let fail = Alcotest.fail

(* -------------------------------------------------------------------- *)
(* Sign                                                                  *)
(* -------------------------------------------------------------------- *)

let sign_testable = Alcotest.testable Qual.Sign.pp Qual.Sign.equal

let test_sign_of_int () =
  check sign_testable "neg" Qual.Sign.Neg (Qual.Sign.of_int (-7));
  check sign_testable "zero" Qual.Sign.Zero (Qual.Sign.of_int 0);
  check sign_testable "pos" Qual.Sign.Pos (Qual.Sign.of_int 42)

let test_sign_add_determined () =
  check (Alcotest.list sign_testable) "pos+pos" [ Qual.Sign.Pos ]
    (Qual.Sign.add Qual.Sign.Pos Qual.Sign.Pos);
  check (Alcotest.list sign_testable) "zero+neg" [ Qual.Sign.Neg ]
    (Qual.Sign.add Qual.Sign.Zero Qual.Sign.Neg)

let test_sign_add_ambiguous () =
  check Alcotest.int "three results" 3
    (List.length (Qual.Sign.add Qual.Sign.Pos Qual.Sign.Neg));
  match Qual.Sign.add_exn Qual.Sign.Pos Qual.Sign.Neg with
  | exception Invalid_argument _ -> ()
  | _ -> fail "add_exn should raise on ambiguity"

let test_sign_mul () =
  check sign_testable "neg*neg" Qual.Sign.Pos
    (Qual.Sign.mul Qual.Sign.Neg Qual.Sign.Neg);
  check sign_testable "neg*pos" Qual.Sign.Neg
    (Qual.Sign.mul Qual.Sign.Neg Qual.Sign.Pos);
  check sign_testable "zero absorbs" Qual.Sign.Zero
    (Qual.Sign.mul Qual.Sign.Zero Qual.Sign.Pos)

let prop_sign_mul_matches_int =
  QCheck.Test.make ~name:"sign: mul is the abstraction of int mul" ~count:200
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (a, b) ->
      Qual.Sign.equal
        (Qual.Sign.mul (Qual.Sign.of_int a) (Qual.Sign.of_int b))
        (Qual.Sign.of_int (a * b)))

let prop_sign_add_sound =
  QCheck.Test.make ~name:"sign: add over-approximates int add" ~count:200
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (a, b) ->
      List.exists
        (Qual.Sign.equal (Qual.Sign.of_int (a + b)))
        (Qual.Sign.add (Qual.Sign.of_int a) (Qual.Sign.of_int b)))

(* -------------------------------------------------------------------- *)
(* Level                                                                 *)
(* -------------------------------------------------------------------- *)

let level_testable = Alcotest.testable Qual.Level.pp Qual.Level.equal

let test_level_order () =
  let sorted = List.sort Qual.Level.compare Qual.Level.all in
  check (Alcotest.list level_testable) "ascending" Qual.Level.all sorted;
  check Alcotest.bool "VL < VH" true
    (Qual.Level.compare Qual.Level.Very_low Qual.Level.Very_high < 0)

let test_level_saturation () =
  check level_testable "succ VH = VH" Qual.Level.Very_high
    (Qual.Level.succ Qual.Level.Very_high);
  check level_testable "pred VL = VL" Qual.Level.Very_low
    (Qual.Level.pred Qual.Level.Very_low);
  check level_testable "shift -10 H = VL" Qual.Level.Very_low
    (Qual.Level.shift (-10) Qual.Level.High)

let test_level_strings () =
  List.iter
    (fun l ->
      (match Qual.Level.of_string (Qual.Level.to_string l) with
      | Some l' -> check level_testable "short roundtrip" l l'
      | None -> fail "short form did not parse");
      match Qual.Level.of_string (Qual.Level.to_long_string l) with
      | Some l' -> check level_testable "long roundtrip" l l'
      | None -> fail "long form did not parse")
    Qual.Level.all;
  check (Alcotest.option level_testable) "garbage" None
    (Qual.Level.of_string "banana")

let level_gen = QCheck.Gen.oneofl Qual.Level.all
let level_arb = QCheck.make ~print:Qual.Level.to_string level_gen

let prop_level_max_lattice =
  QCheck.Test.make ~name:"level: max/min form a lattice" ~count:200
    QCheck.(pair level_arb level_arb)
    (fun (a, b) ->
      Qual.Level.equal (Qual.Level.max a b) (Qual.Level.max b a)
      && Qual.Level.equal (Qual.Level.min a b) (Qual.Level.min b a)
      && Qual.Level.equal (Qual.Level.max a (Qual.Level.min a b)) a)

(* -------------------------------------------------------------------- *)
(* Domain                                                                *)
(* -------------------------------------------------------------------- *)

let workload =
  Qual.Domain.make ~name:"workload" [ "low"; "medium"; "high"; "overloaded" ]

let test_domain_basics () =
  check Alcotest.int "size" 4 (Qual.Domain.size workload);
  let v = Qual.Domain.value workload "high" in
  check Alcotest.string "label" "high" (Qual.Domain.label v);
  check Alcotest.int "index" 2 (Qual.Domain.index v)

let test_domain_rejects () =
  (match Qual.Domain.make ~name:"d" [] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty domain accepted");
  (match Qual.Domain.make ~name:"d" [ "a"; "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "duplicate label accepted");
  match Qual.Domain.value workload "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown label accepted"

let test_domain_cross_domain_comparison () =
  let other = Qual.Domain.make ~name:"other" [ "low"; "high" ] in
  let a = Qual.Domain.value workload "low" in
  let b = Qual.Domain.value other "low" in
  match Qual.Domain.compare_value a b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "cross-domain comparison accepted"

let test_domain_navigation () =
  let low = Qual.Domain.min_value workload in
  check Alcotest.string "min" "low" (Qual.Domain.label low);
  check Alcotest.string "max" "overloaded"
    (Qual.Domain.label (Qual.Domain.max_value workload));
  (match Qual.Domain.succ low with
  | Some v -> check Alcotest.string "succ low" "medium" (Qual.Domain.label v)
  | None -> fail "succ low missing");
  check (Alcotest.option Alcotest.string) "succ max" None
    (Option.map Qual.Domain.label (Qual.Domain.succ (Qual.Domain.max_value workload)));
  check Alcotest.string "shift clamps" "overloaded"
    (Qual.Domain.label (Qual.Domain.shift_clamped 10 low))

let test_domain_between () =
  let v l = Qual.Domain.value workload l in
  check Alcotest.bool "in range" true
    (Qual.Domain.between ~lo:(v "medium") ~hi:(v "overloaded") (v "high"));
  check Alcotest.bool "below range" false
    (Qual.Domain.between ~lo:(v "medium") ~hi:(v "overloaded") (v "low"))

(* -------------------------------------------------------------------- *)
(* Qspace                                                                *)
(* -------------------------------------------------------------------- *)

let level_space =
  Qual.Qspace.make ~name:"level" ~landmarks:[ "empty"; "normal"; "full" ]

let test_qspace_order () =
  let open Qual.Qspace in
  let vals = [ Below; At 0; Between 0; At 1; Between 1; At 2; Above ] in
  let sorted = List.sort (compare_qval level_space) vals in
  check Alcotest.bool "already ordered" true
    (List.for_all2 equal_qval vals sorted)

let test_qspace_move () =
  let open Qual.Qspace in
  check Alcotest.bool "up from landmark" true
    (equal_qval (Between 0) (move level_space (At 0) Qual.Sign.Pos));
  check Alcotest.bool "up from interval" true
    (equal_qval (At 1) (move level_space (Between 0) Qual.Sign.Pos));
  check Alcotest.bool "down from interval" true
    (equal_qval (At 1) (move level_space (Between 1) Qual.Sign.Neg));
  check Alcotest.bool "zero keeps" true
    (equal_qval (Between 1) (move level_space (Between 1) Qual.Sign.Zero));
  check Alcotest.bool "saturate above" true
    (equal_qval Above (move level_space Above Qual.Sign.Pos));
  check Alcotest.bool "top landmark moves above" true
    (equal_qval Above (move level_space (At 2) Qual.Sign.Pos))

let numeric_space =
  Qual.Qspace.make_numeric ~name:"temp"
    ~landmarks:[ ("freezing", 0.); ("ambient", 20.); ("boiling", 100.) ]

let test_qspace_abstract () =
  let open Qual.Qspace in
  check Alcotest.bool "below" true (equal_qval Below (abstract numeric_space (-3.)));
  check Alcotest.bool "at landmark" true (equal_qval (At 1) (abstract numeric_space 20.));
  check Alcotest.bool "interval" true
    (equal_qval (Between 1) (abstract numeric_space 50.));
  check Alcotest.bool "above" true (equal_qval Above (abstract numeric_space 150.));
  match abstract level_space 1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "abstract on symbolic space accepted"

let test_qspace_non_increasing_rejected () =
  match
    Qual.Qspace.make_numeric ~name:"bad" ~landmarks:[ ("a", 1.); ("b", 1.) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-increasing landmarks accepted"

let prop_qspace_move_inverse =
  let open Qual.Qspace in
  let qval_gen =
    QCheck.Gen.oneofl [ At 0; Between 0; At 1; Between 1; At 2 ]
  in
  QCheck.Test.make ~name:"qspace: move up then down is identity (interior)"
    ~count:100
    (QCheck.make ~print:(to_string level_space) qval_gen)
    (fun v ->
      let up = move level_space v Qual.Sign.Pos in
      (* moving up from the top landmark saturates, skip that case *)
      if equal_qval up Above then true
      else equal_qval v (move level_space up Qual.Sign.Neg))

(* -------------------------------------------------------------------- *)
(* Qstate                                                                *)
(* -------------------------------------------------------------------- *)

let test_qstate_basics () =
  let s = Qual.Qstate.of_list [ ("level", "normal"); ("valve", "open") ] in
  check Alcotest.string "get" "normal" (Qual.Qstate.get "level" s);
  check Alcotest.bool "holds" true (Qual.Qstate.holds "valve" "open" s);
  check Alcotest.bool "not holds" false (Qual.Qstate.holds "valve" "closed" s);
  check Alcotest.int "cardinal" 2 (Qual.Qstate.cardinal s);
  let s' = Qual.Qstate.set "valve" "closed" s in
  check Alcotest.bool "set overrides" true (Qual.Qstate.holds "valve" "closed" s');
  check Alcotest.bool "original untouched" true (Qual.Qstate.holds "valve" "open" s)

let test_qstate_merge_restrict () =
  let a = Qual.Qstate.of_list [ ("x", "1"); ("y", "2") ] in
  let b = Qual.Qstate.of_list [ ("y", "3"); ("z", "4") ] in
  let m = Qual.Qstate.merge a b in
  check Alcotest.string "right bias" "3" (Qual.Qstate.get "y" m);
  check Alcotest.int "union size" 3 (Qual.Qstate.cardinal m);
  let r = Qual.Qstate.restrict [ "x"; "z" ] m in
  check (Alcotest.list Alcotest.string) "restricted vars" [ "x"; "z" ]
    (Qual.Qstate.vars r)

let test_qstate_equality () =
  let a = Qual.Qstate.of_list [ ("x", "1"); ("y", "2") ] in
  let b = Qual.Qstate.of_list [ ("y", "2"); ("x", "1") ] in
  check Alcotest.bool "order-insensitive" true (Qual.Qstate.equal a b);
  check Alcotest.int "hash agrees" (Qual.Qstate.hash a) (Qual.Qstate.hash b)

(* -------------------------------------------------------------------- *)
(* Flow                                                                  *)
(* -------------------------------------------------------------------- *)

let test_flow_dominant () =
  let open Qual.Flow in
  check sign_testable "fill" Qual.Sign.Pos
    (derivative_dominant [ In Qual.Sign.Pos; Out Qual.Sign.Zero ]);
  check sign_testable "drain" Qual.Sign.Neg
    (derivative_dominant [ In Qual.Sign.Zero; Out Qual.Sign.Pos ]);
  check sign_testable "balanced" Qual.Sign.Zero
    (derivative_dominant [ In Qual.Sign.Pos; Out Qual.Sign.Pos ]);
  check sign_testable "no flow" Qual.Sign.Zero (derivative_dominant [])

let test_flow_ambiguous () =
  let open Qual.Flow in
  let ds = derivative [ In Qual.Sign.Pos; Out Qual.Sign.Pos ] in
  check Alcotest.int "opposing unit flows: all three signs" 3 (List.length ds);
  let ds = derivative [ In Qual.Sign.Pos ] in
  check (Alcotest.list sign_testable) "single inflow" [ Qual.Sign.Pos ] ds

let prop_flow_dominant_in_derivative =
  let contrib_gen =
    QCheck.Gen.(
      list_size (int_range 0 5)
        (map2
           (fun inflow s -> if inflow then Qual.Flow.In s else Qual.Flow.Out s)
           bool (oneofl Qual.Sign.all)))
  in
  QCheck.Test.make ~name:"flow: dominant resolution is a possible derivative"
    ~count:200
    (QCheck.make contrib_gen)
    (fun cs ->
      List.exists
        (Qual.Sign.equal (Qual.Flow.derivative_dominant cs))
        (Qual.Flow.derivative cs))

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "qual.sign",
      [
        Alcotest.test_case "of_int" `Quick test_sign_of_int;
        Alcotest.test_case "add determined" `Quick test_sign_add_determined;
        Alcotest.test_case "add ambiguous" `Quick test_sign_add_ambiguous;
        Alcotest.test_case "mul" `Quick test_sign_mul;
        qcheck prop_sign_mul_matches_int;
        qcheck prop_sign_add_sound;
      ] );
    ( "qual.level",
      [
        Alcotest.test_case "order" `Quick test_level_order;
        Alcotest.test_case "saturation" `Quick test_level_saturation;
        Alcotest.test_case "strings" `Quick test_level_strings;
        qcheck prop_level_max_lattice;
      ] );
    ( "qual.domain",
      [
        Alcotest.test_case "basics" `Quick test_domain_basics;
        Alcotest.test_case "rejects bad input" `Quick test_domain_rejects;
        Alcotest.test_case "cross-domain compare" `Quick
          test_domain_cross_domain_comparison;
        Alcotest.test_case "navigation" `Quick test_domain_navigation;
        Alcotest.test_case "between" `Quick test_domain_between;
      ] );
    ( "qual.qspace",
      [
        Alcotest.test_case "total order" `Quick test_qspace_order;
        Alcotest.test_case "move" `Quick test_qspace_move;
        Alcotest.test_case "abstract numeric" `Quick test_qspace_abstract;
        Alcotest.test_case "rejects non-increasing" `Quick
          test_qspace_non_increasing_rejected;
        qcheck prop_qspace_move_inverse;
      ] );
    ( "qual.qstate",
      [
        Alcotest.test_case "basics" `Quick test_qstate_basics;
        Alcotest.test_case "merge/restrict" `Quick test_qstate_merge_restrict;
        Alcotest.test_case "equality" `Quick test_qstate_equality;
      ] );
    ( "qual.flow",
      [
        Alcotest.test_case "dominant" `Quick test_flow_dominant;
        Alcotest.test_case "ambiguous" `Quick test_flow_ambiguous;
        qcheck prop_flow_dominant_in_derivative;
      ] );
  ]
