(* Tests for hierarchical refinement (lib/cegar). *)

let check = Alcotest.check
let fail = Alcotest.fail

let el id name kind = Archimate.Element.make ~id ~name ~kind ()

(* -------------------------------------------------------------------- *)
(* Levels (Fig. 3)                                                       *)
(* -------------------------------------------------------------------- *)

let test_levels_focus_mapping () =
  let open Cegar.Levels in
  check Alcotest.string "aspect -> topology" "topology-based propagation"
    (focus_to_string (focus_for A_system T_aspect));
  check Alcotest.string "fault -> detailed" "detailed propagation analysis"
    (focus_to_string (focus_for A_subsystem T_fault));
  check Alcotest.string "mitigation -> plan" "mitigation plan"
    (focus_to_string (focus_for A_component T_mitigation))

let test_levels_refinement_order () =
  let open Cegar.Levels in
  check Alcotest.bool "system -> component" true
    (refines ~coarse:A_system ~fine:A_component);
  check Alcotest.bool "not reflexive" false
    (refines ~coarse:A_subsystem ~fine:A_subsystem);
  check Alcotest.bool "not backwards" false
    (refines ~coarse:A_component ~fine:A_system)

let test_levels_matrix_render () =
  let s = Cegar.Levels.render_matrix () in
  check Alcotest.bool "3 asset rows + header" true
    (List.length (String.split_on_char '\n' s) >= 5)

(* -------------------------------------------------------------------- *)
(* Asset refinement (Fig. 4)                                             *)
(* -------------------------------------------------------------------- *)

let base_model () =
  let open Archimate in
  Model.empty ~name:"case study"
  |> Model.add_element (el "ews" "Engineering Workstation" Element.Node)
  |> Model.add_element (el "ctrl" "Water Tank Controller" Element.Application_component)
  |> Model.add_relationship
       (Relationship.make ~id:"r1" ~source:"ews" ~target:"ctrl"
          ~kind:Relationship.Serving ())

(* the paper's refinement: E-mail Client -> Browser -> Infected Computer *)
let ews_refinement =
  {
    Cegar.Refine.target = "ews";
    parts =
      [
        el "email" "E-mail Client" Archimate.Element.Application_component;
        el "browser" "Browser" Archimate.Element.Application_component;
        el "infected" "Infected Computer" Archimate.Element.Node;
      ];
    internal_flows = [ ("email", "browser"); ("browser", "infected") ];
  }

let test_refine_apply () =
  let m = Cegar.Refine.apply (base_model ()) ews_refinement in
  check Alcotest.int "elements grew" 5 (Archimate.Model.element_count m);
  check (Alcotest.list Alcotest.string) "parts attached"
    [ "email"; "browser"; "infected" ]
    (Cegar.Refine.parts_of m "ews");
  check Alcotest.bool "still valid" true (Archimate.Validate.is_valid m)

let test_refine_attack_path () =
  let m = Cegar.Refine.apply (base_model ()) ews_refinement in
  match Cegar.Refine.attack_path m ~entry:"email" ~target:"infected" with
  | Some path ->
      check (Alcotest.list Alcotest.string) "spam-link chain"
        [ "email"; "browser"; "infected" ] path
  | None -> fail "expected an attack path"

let test_refine_attack_path_absent () =
  let m = Cegar.Refine.apply (base_model ()) ews_refinement in
  check Alcotest.bool "no reverse path" true
    (Cegar.Refine.attack_path m ~entry:"infected" ~target:"email" = None)

let test_refine_flatten_roundtrip () =
  let m0 = base_model () in
  let m1 = Cegar.Refine.apply m0 ews_refinement in
  let m2 = Cegar.Refine.flatten m1 "ews" in
  check Alcotest.int "back to coarse" (Archimate.Model.element_count m0)
    (Archimate.Model.element_count m2);
  check (Alcotest.list Alcotest.string) "no parts left" []
    (Cegar.Refine.parts_of m2 "ews")

let test_refine_errors () =
  (match Cegar.Refine.apply (base_model ()) { ews_refinement with Cegar.Refine.target = "ghost" } with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown target accepted");
  let clash =
    { ews_refinement with
      Cegar.Refine.parts = [ el "ctrl" "Duplicate" Archimate.Element.Node ] }
  in
  match Cegar.Refine.apply (base_model ()) clash with
  | exception Invalid_argument _ -> ()
  | _ -> fail "id collision accepted"

(* -------------------------------------------------------------------- *)
(* CEGAR loop                                                            *)
(* -------------------------------------------------------------------- *)

let test_loop_eliminates_spurious () =
  (* abstraction: candidates 1..6; level 1 removes odd; level 2 removes >4 *)
  let refine level candidates =
    match level with
    | 0 -> Some (List.filter (fun c -> c mod 2 = 0) candidates)
    | 1 -> Some (List.filter (fun c -> c <= 4) candidates)
    | _ -> None
  in
  let outcome =
    Cegar.Loop.run ~equal:Int.equal
      ~initial:(fun () -> [ 1; 2; 3; 4; 5; 6 ])
      ~refine ()
  in
  check (Alcotest.list Alcotest.int) "confirmed" [ 2; 4 ]
    outcome.Cegar.Loop.confirmed;
  check Alcotest.bool "converged" true outcome.Cegar.Loop.converged;
  check Alcotest.int "three rounds recorded" 3
    (List.length outcome.Cegar.Loop.rounds);
  let round1 = List.nth outcome.Cegar.Loop.rounds 1 in
  check (Alcotest.list Alcotest.int) "eliminated at level 1" [ 1; 3; 5 ]
    round1.Cegar.Loop.eliminated

let test_loop_rejects_unsound_refinement () =
  let refine _ _ = Some [ 42 ] in
  match
    Cegar.Loop.run ~equal:Int.equal ~initial:(fun () -> [ 1 ]) ~refine ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "refinement introducing candidates accepted"

let test_loop_max_rounds () =
  (* refinement that never terminates: stop at max_rounds, not converged *)
  let refine _ candidates = Some candidates in
  let outcome =
    Cegar.Loop.run ~max_rounds:4 ~equal:Int.equal
      ~initial:(fun () -> [ 1; 2 ])
      ~refine ()
  in
  check Alcotest.bool "not converged" false outcome.Cegar.Loop.converged;
  check Alcotest.int "bounded rounds" 5 (List.length outcome.Cegar.Loop.rounds)

let test_loop_immediate_convergence () =
  let outcome =
    Cegar.Loop.run ~equal:Int.equal
      ~initial:(fun () -> [ 7 ])
      ~refine:(fun _ _ -> None)
      ()
  in
  check Alcotest.bool "converged" true outcome.Cegar.Loop.converged;
  check (Alcotest.list Alcotest.int) "kept" [ 7 ] outcome.Cegar.Loop.confirmed

let prop_loop_candidates_shrink =
  QCheck.Test.make ~name:"cegar: candidate sets only shrink" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 8) (int_range 0 20)))
    (fun initial ->
      let initial = List.sort_uniq compare initial in
      let refine level candidates =
        if level >= 3 then None
        else Some (List.filter (fun c -> c mod (level + 2) <> 0) candidates)
      in
      let outcome =
        Cegar.Loop.run ~equal:Int.equal ~initial:(fun () -> initial) ~refine ()
      in
      let sizes =
        List.map
          (fun r -> List.length r.Cegar.Loop.candidates)
          outcome.Cegar.Loop.rounds
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [ _ ] | [] -> true
      in
      non_increasing sizes)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "cegar.levels",
      [
        Alcotest.test_case "focus mapping" `Quick test_levels_focus_mapping;
        Alcotest.test_case "refinement order" `Quick test_levels_refinement_order;
        Alcotest.test_case "matrix render" `Quick test_levels_matrix_render;
      ] );
    ( "cegar.refine",
      [
        Alcotest.test_case "apply" `Quick test_refine_apply;
        Alcotest.test_case "attack path" `Quick test_refine_attack_path;
        Alcotest.test_case "no reverse path" `Quick test_refine_attack_path_absent;
        Alcotest.test_case "flatten roundtrip" `Quick
          test_refine_flatten_roundtrip;
        Alcotest.test_case "errors" `Quick test_refine_errors;
      ] );
    ( "cegar.loop",
      [
        Alcotest.test_case "eliminates spurious" `Quick
          test_loop_eliminates_spurious;
        Alcotest.test_case "rejects unsound refinement" `Quick
          test_loop_rejects_unsound_refinement;
        Alcotest.test_case "max rounds" `Quick test_loop_max_rounds;
        Alcotest.test_case "immediate convergence" `Quick
          test_loop_immediate_convergence;
        qcheck prop_loop_candidates_shrink;
      ] );
  ]
