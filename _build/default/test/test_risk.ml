(* Tests for the qualitative risk layer (lib/risk), including a cell-by-cell
   check of the paper's Table I. *)

let check = Alcotest.check
let fail = Alcotest.fail

let level_testable = Alcotest.testable Qual.Level.pp Qual.Level.equal
let lvl s = Option.get (Qual.Level.of_string s)

(* -------------------------------------------------------------------- *)
(* Matrix                                                                *)
(* -------------------------------------------------------------------- *)

let test_matrix_shape_validation () =
  (match Risk.Matrix.of_rows [ [ Qual.Level.Low ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "bad shape accepted");
  match Risk.Matrix.of_rows (List.init 5 (fun _ -> List.init 4 (fun _ -> Qual.Level.Low))) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "4-wide rows accepted"

let test_matrix_roundtrip () =
  let rows = Risk.Matrix.to_rows Risk.Ora.risk_matrix in
  let again = Risk.Matrix.of_rows rows in
  check (Alcotest.list (Alcotest.list level_testable)) "roundtrip" rows
    (Risk.Matrix.to_rows again)

let test_matrix_non_monotone_detected () =
  let bad =
    Risk.Matrix.of_rows
      [
        [ lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL" ];
        [ lvl "VL"; lvl "H"; lvl "VL"; lvl "VL"; lvl "VL" ];
        [ lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL" ];
        [ lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL" ];
        [ lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL"; lvl "VL" ];
      ]
  in
  check Alcotest.bool "non-monotone" false (Risk.Matrix.monotone bad)

(* -------------------------------------------------------------------- *)
(* Table I — the paper's O-RA risk matrix, cell for cell                 *)
(* -------------------------------------------------------------------- *)

let paper_table_i =
  (* (LM, [risk at LEF=VL; L; M; H; VH]) exactly as printed in Table I *)
  [
    ("VH", [ "M"; "H"; "VH"; "VH"; "VH" ]);
    ("H", [ "L"; "M"; "H"; "VH"; "VH" ]);
    ("M", [ "VL"; "L"; "M"; "H"; "VH" ]);
    ("L", [ "VL"; "VL"; "L"; "M"; "H" ]);
    ("VL", [ "VL"; "VL"; "VL"; "L"; "M" ]);
  ]

let test_table_i_exact () =
  List.iter
    (fun (lm, row) ->
      List.iteri
        (fun i expected ->
          let lef = Qual.Level.of_index_clamped i in
          check level_testable
            (Printf.sprintf "LM=%s LEF=%s" lm (Qual.Level.to_string lef))
            (lvl expected)
            (Risk.Ora.risk ~lm:(lvl lm) ~lef))
        row)
    paper_table_i

let test_table_i_paper_example () =
  (* §IV.B: "if LM is medium and LEF is low, the risk will be low" *)
  check level_testable "paper example" (lvl "L")
    (Risk.Ora.risk ~lm:(lvl "M") ~lef:(lvl "L"))

let test_table_i_monotone () =
  check Alcotest.bool "risk matrix monotone" true
    (Risk.Matrix.monotone Risk.Ora.risk_matrix)

(* -------------------------------------------------------------------- *)
(* O-RA derivations (Fig. 2)                                             *)
(* -------------------------------------------------------------------- *)

let test_ora_assess_direct () =
  let attrs =
    {
      Risk.Ora.no_attributes with
      Risk.Ora.loss_event_frequency = Some (lvl "L");
      loss_magnitude = Some (lvl "M");
    }
  in
  match Risk.Ora.assess attrs with
  | Ok a -> check level_testable "direct assessment" (lvl "L") a.Risk.Ora.level
  | Error e -> fail e

let test_ora_assess_derived () =
  (* fully derived from the leaves *)
  let attrs =
    {
      Risk.Ora.no_attributes with
      Risk.Ora.contact_frequency = Some (lvl "H");
      probability_of_action = Some (lvl "H");
      threat_capability = Some (lvl "H");
      resistance_strength = Some (lvl "L");
      primary_loss = Some (lvl "H");
      secondary_loss = Some (lvl "M");
    }
  in
  match Risk.Ora.assess attrs with
  | Ok a ->
      (* TEF = min(H,H) = H; Vuln = M + (H-L) = VH; LEF = H - 0 = H;
         LM = max(H,M) = H; Risk(H,H) = VH *)
      check level_testable "derived" (lvl "VH") a.Risk.Ora.level;
      (* tree shape: risk has 2 children, both derived with 2 children *)
      check Alcotest.int "risk children" 2
        (List.length a.Risk.Ora.tree.Risk.Ora.children);
      List.iter
        (fun (n : Risk.Ora.node) ->
          check Alcotest.int ("children of " ^ n.Risk.Ora.attribute) 2
            (List.length n.Risk.Ora.children))
        a.Risk.Ora.tree.Risk.Ora.children
  | Error e -> fail e

let test_ora_assess_missing () =
  match Risk.Ora.assess Risk.Ora.no_attributes with
  | Error missing ->
      check Alcotest.string "first missing leaf" "contact_frequency" missing
  | Ok _ -> fail "expected an error"

let test_ora_direct_overrides_derivation () =
  let attrs =
    {
      Risk.Ora.no_attributes with
      Risk.Ora.loss_event_frequency = Some (lvl "VL");
      (* the leaves would derive something high, but LEF is given *)
      contact_frequency = Some (lvl "VH");
      probability_of_action = Some (lvl "VH");
      threat_capability = Some (lvl "VH");
      resistance_strength = Some (lvl "VL");
      loss_magnitude = Some (lvl "M");
    }
  in
  match Risk.Ora.assess attrs with
  | Ok a -> check level_testable "override wins" (lvl "VL") a.Risk.Ora.level
  | Error e -> fail e

let test_ora_vulnerability_derivation () =
  check level_testable "evenly matched -> M" (lvl "M")
    (Risk.Ora.derive_vulnerability ~capability:(lvl "H") ~resistance:(lvl "H"));
  check level_testable "outmatched defender" (lvl "VH")
    (Risk.Ora.derive_vulnerability ~capability:(lvl "VH") ~resistance:(lvl "VL"));
  check level_testable "strong defender" (lvl "VL")
    (Risk.Ora.derive_vulnerability ~capability:(lvl "VL") ~resistance:(lvl "VH"))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_ora_render_tree () =
  let attrs =
    {
      Risk.Ora.no_attributes with
      Risk.Ora.loss_event_frequency = Some (lvl "L");
      loss_magnitude = Some (lvl "M");
    }
  in
  match Risk.Ora.assess attrs with
  | Ok a ->
      let s = Risk.Ora.render_tree a.Risk.Ora.tree in
      check Alcotest.bool "mentions risk" true
        (String.length s > 4 && String.sub s 0 4 = "risk");
      check Alcotest.bool "mentions given" true (contains s "(given)")
  | Error e -> fail e

let prop_risk_monotone_in_inputs =
  let gen = QCheck.Gen.(pair (oneofl Qual.Level.all) (oneofl Qual.Level.all)) in
  QCheck.Test.make ~name:"ora: risk monotone in LM and LEF" ~count:200
    (QCheck.make gen)
    (fun (lm, lef) ->
      let r = Risk.Ora.risk ~lm ~lef in
      let up_lm = Risk.Ora.risk ~lm:(Qual.Level.succ lm) ~lef in
      let up_lef = Risk.Ora.risk ~lm ~lef:(Qual.Level.succ lef) in
      Qual.Level.compare up_lm r >= 0 && Qual.Level.compare up_lef r >= 0)

(* -------------------------------------------------------------------- *)
(* IEC 61508                                                             *)
(* -------------------------------------------------------------------- *)

let test_iec_corner_cells () =
  let open Risk.Iec61508 in
  check Alcotest.string "frequent catastrophic" "I"
    (risk_class_to_string (classify Frequent Catastrophic));
  check Alcotest.string "incredible negligible" "IV"
    (risk_class_to_string (classify Incredible Negligible));
  check Alcotest.string "remote catastrophic" "II"
    (risk_class_to_string (classify Remote Catastrophic));
  check Alcotest.string "occasional marginal" "III"
    (risk_class_to_string (classify Occasional Marginal))

let test_iec_tolerability () =
  let open Risk.Iec61508 in
  check Alcotest.bool "class I intolerable" false (tolerable Class_I);
  check Alcotest.bool "class III tolerable" true (tolerable Class_III)

let test_iec_monotone () =
  (* moving to a less likely row or milder consequence never worsens class *)
  let open Risk.Iec61508 in
  let class_index = function
    | Class_I -> 0
    | Class_II -> 1
    | Class_III -> 2
    | Class_IV -> 3
  in
  let rec adjacent = function
    | a :: (b :: _ as rest) -> (a, b) :: adjacent rest
    | [ _ ] | [] -> []
  in
  List.iter
    (fun c ->
      List.iter
        (fun (more_likely, less_likely) ->
          check Alcotest.bool "likelihood monotone" true
            (class_index (classify less_likely c)
            >= class_index (classify more_likely c)))
        (adjacent all_likelihoods))
    all_consequences;
  List.iter
    (fun l ->
      List.iter
        (fun (worse, milder) ->
          check Alcotest.bool "consequence monotone" true
            (class_index (classify l milder) >= class_index (classify l worse)))
        (adjacent all_consequences))
    all_likelihoods

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "risk.matrix",
      [
        Alcotest.test_case "shape validation" `Quick test_matrix_shape_validation;
        Alcotest.test_case "roundtrip" `Quick test_matrix_roundtrip;
        Alcotest.test_case "non-monotone detected" `Quick
          test_matrix_non_monotone_detected;
      ] );
    ( "risk.table1",
      [
        Alcotest.test_case "Table I exact" `Quick test_table_i_exact;
        Alcotest.test_case "paper example (M,L)->L" `Quick
          test_table_i_paper_example;
        Alcotest.test_case "monotone" `Quick test_table_i_monotone;
      ] );
    ( "risk.ora",
      [
        Alcotest.test_case "direct assessment" `Quick test_ora_assess_direct;
        Alcotest.test_case "derived assessment" `Quick test_ora_assess_derived;
        Alcotest.test_case "missing attribute" `Quick test_ora_assess_missing;
        Alcotest.test_case "direct overrides derivation" `Quick
          test_ora_direct_overrides_derivation;
        Alcotest.test_case "vulnerability derivation" `Quick
          test_ora_vulnerability_derivation;
        Alcotest.test_case "render tree" `Quick test_ora_render_tree;
        qcheck prop_risk_monotone_in_inputs;
      ] );
    ( "risk.iec61508",
      [
        Alcotest.test_case "corner cells" `Quick test_iec_corner_cells;
        Alcotest.test_case "tolerability" `Quick test_iec_tolerability;
        Alcotest.test_case "monotone" `Quick test_iec_monotone;
      ] );
  ]
