type uncertain = {
  lm : Qual.Level.t list;
  lef : Qual.Level.t list;
}

let exact ~lm ~lef = { lm = [ lm ]; lef = [ lef ] }

let check u =
  if u.lm = [] || u.lef = [] then
    invalid_arg "Risk_bridge: empty possibility set"

let combos u =
  check u;
  List.concat_map (fun lm -> List.map (fun lef -> (lm, lef)) u.lef) u.lm

let possible_risks u =
  combos u
  |> List.map (fun (lm, lef) -> Risk.Ora.risk ~lm ~lef)
  |> List.sort_uniq Qual.Level.compare

let certain_risk u =
  match possible_risks u with [ r ] -> Some r | _ -> None

let is_sensitive u = List.length (possible_risks u) > 1

let worlds u =
  let rows =
    List.map
      (fun (lm, lef) ->
        let risk = Risk.Ora.risk ~lm ~lef in
        ( Printf.sprintf "w_%s_%s" (Qual.Level.to_string lm)
            (Qual.Level.to_string lef),
          [
            Qual.Level.to_string lm; Qual.Level.to_string lef;
            Qual.Level.to_string risk;
          ] ))
      (combos u)
  in
  Infosys.of_table ~attributes:[ "lm"; "lef"; "risk" ] rows

let outcome_regions ~target u =
  let outcomes = possible_risks u in
  if List.exists (Qual.Level.equal target) outcomes then
    if List.length outcomes = 1 then `Certain else `Possible
  else `Excluded
