let subsets xs =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] xs
  |> List.map List.rev

let reducts ~decision t =
  let conditions, _ = Infosys.decision_of ~decision t in
  let all_attrs = Infosys.attributes conditions in
  let full = Approx.dependency_degree ~decision t in
  let candidates =
    subsets all_attrs
    |> List.filter (fun b -> b <> [])
    |> List.filter (fun b ->
           let restricted =
             Infosys.restrict_attributes (b @ [ decision ]) t
           in
           Approx.dependency_degree ~decision restricted >= full)
  in
  (* keep only minimal ones *)
  let is_strict_subset a b =
    List.length a < List.length b && List.for_all (fun x -> List.mem x b) a
  in
  List.filter
    (fun b -> not (List.exists (fun b' -> is_strict_subset b' b) candidates))
    candidates

let core ~decision t =
  match reducts ~decision t with
  | [] -> []
  | first :: rest ->
      List.filter (fun a -> List.for_all (List.mem a) rest) first

type rule = {
  conditions : (string * string) list;
  decision : string * string;
  certain : bool;
  support : int;
}

let induce_rules ~decision t =
  let conditions, d = Infosys.decision_of ~decision t in
  let attrs = Infosys.attributes conditions in
  let classes = Approx.indiscernibility conditions in
  List.concat_map
    (fun cls ->
      let obj0 = List.hd cls in
      let conds = List.map (fun a -> (a, Infosys.value t obj0 a)) attrs in
      let decisions =
        List.sort_uniq String.compare
          (List.map (fun o -> Infosys.value t o d) cls)
      in
      let certain = List.length decisions = 1 in
      List.map
        (fun dv ->
          {
            conditions = conds;
            decision = (d, dv);
            certain;
            support =
              List.length (List.filter (fun o -> Infosys.value t o d = dv) cls);
          })
        decisions)
    classes

let rule_to_string r =
  let conds =
    r.conditions
    |> List.map (fun (a, v) -> Printf.sprintf "%s=%s" a v)
    |> String.concat " & "
  in
  let d, dv = r.decision in
  Printf.sprintf "%s => %s=%s [%s, support %d]" conds d dv
    (if r.certain then "certain" else "possible")
    r.support
