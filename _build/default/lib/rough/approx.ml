let signature t attrs obj = List.map (fun a -> Infosys.value t obj a) attrs

let indiscernibility ?attributes t =
  let attrs = Option.value ~default:(Infosys.attributes t) attributes in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun obj ->
      let key = signature t attrs obj in
      match Hashtbl.find_opt tbl key with
      | Some l -> l := obj :: !l
      | None ->
          let l = ref [ obj ] in
          Hashtbl.replace tbl key l;
          order := key :: !order)
    (Infosys.objects t);
  List.rev_map
    (fun key -> List.sort String.compare !(Hashtbl.find tbl key))
    !order

let lower ?attributes t target =
  indiscernibility ?attributes t
  |> List.filter (fun cls -> List.for_all (fun o -> List.mem o target) cls)
  |> List.concat
  |> List.sort String.compare

let upper ?attributes t target =
  indiscernibility ?attributes t
  |> List.filter (fun cls -> List.exists (fun o -> List.mem o target) cls)
  |> List.concat
  |> List.sort String.compare

type regions = {
  positive : string list;
  boundary : string list;
  negative : string list;
}

let regions ?attributes t target =
  let lo = lower ?attributes t target in
  let up = upper ?attributes t target in
  {
    positive = lo;
    boundary = List.filter (fun o -> not (List.mem o lo)) up;
    negative =
      List.filter (fun o -> not (List.mem o up)) (Infosys.objects t)
      |> List.sort String.compare;
  }

let accuracy ?attributes t target =
  let up = upper ?attributes t target in
  if up = [] then 1.0
  else
    float_of_int (List.length (lower ?attributes t target))
    /. float_of_int (List.length up)

let is_crisp ?attributes t target = accuracy ?attributes t target = 1.0

let dependency_degree ~decision t =
  let conditions, d = Infosys.decision_of ~decision t in
  let decision_classes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun obj ->
        let v = Infosys.value t obj d in
        Hashtbl.replace tbl v
          (obj :: Option.value ~default:[] (Hashtbl.find_opt tbl v)))
      (Infosys.objects t);
    Hashtbl.fold (fun _ objs acc -> objs :: acc) tbl []
  in
  let positive_size =
    List.fold_left
      (fun acc cls -> acc + List.length (lower conditions cls))
      0 decision_classes
  in
  float_of_int positive_size /. float_of_int (List.length (Infosys.objects t))
