(** Rough approximations: indiscernibility, lower/upper approximation and
    the positive/boundary/negative regions (§V.A: "the result of the RST
    approximation consists of three sets"). *)

val indiscernibility : ?attributes:string list -> Infosys.t -> string list list
(** Equivalence classes of objects indistinguishable on the given attributes
    (default: all visible attributes), each class sorted; classes ordered by
    first member. *)

val lower : ?attributes:string list -> Infosys.t -> string list -> string list
(** Objects whose whole indiscernibility class lies inside the target set —
    certainly in the set. *)

val upper : ?attributes:string list -> Infosys.t -> string list -> string list
(** Objects whose class intersects the target set — possibly in the set. *)

type regions = {
  positive : string list;  (** certainly in *)
  boundary : string list;  (** undecidable from the available attributes *)
  negative : string list;  (** certainly out *)
}

val regions : ?attributes:string list -> Infosys.t -> string list -> regions

val accuracy : ?attributes:string list -> Infosys.t -> string list -> float
(** |lower| / |upper|; 1.0 for crisp (exactly definable) sets, and for the
    empty set by convention. *)

val is_crisp : ?attributes:string list -> Infosys.t -> string list -> bool

val dependency_degree : decision:string -> Infosys.t -> float
(** γ(C, d): fraction of objects in the positive region of the decision's
    partition w.r.t. the condition attributes. *)
