type t = {
  objects : string list;
  attributes : string list;
  visible : string list; (* attribute view; values table keeps everything *)
  table : (string * string, string) Hashtbl.t;
}

let of_table ~attributes rows =
  if attributes = [] then invalid_arg "Infosys.of_table: no attributes";
  let table = Hashtbl.create (List.length rows * List.length attributes) in
  let seen = Hashtbl.create 16 in
  let objects =
    List.map
      (fun (obj, values) ->
        if Hashtbl.mem seen obj then
          invalid_arg (Printf.sprintf "Infosys.of_table: duplicate object %s" obj);
        Hashtbl.replace seen obj ();
        if List.length values <> List.length attributes then
          invalid_arg
            (Printf.sprintf "Infosys.of_table: row %s has %d values, expected %d"
               obj (List.length values) (List.length attributes));
        List.iter2 (fun a v -> Hashtbl.replace table (obj, a) v) attributes values;
        obj)
      rows
  in
  { objects; attributes; visible = attributes; table }

let objects t = t.objects
let attributes t = t.visible

let value t obj attr =
  match Hashtbl.find_opt t.table (obj, attr) with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "Infosys.value: no value for (%s, %s)" obj attr)

let decision_of ~decision t =
  if not (List.mem decision t.attributes) then
    invalid_arg (Printf.sprintf "Infosys.decision_of: unknown attribute %s" decision);
  ({ t with visible = List.filter (fun a -> a <> decision) t.visible }, decision)

let restrict_attributes attrs t =
  List.iter
    (fun a ->
      if not (List.mem a t.attributes) then
        invalid_arg (Printf.sprintf "Infosys.restrict_attributes: unknown %s" a))
    attrs;
  { t with visible = List.filter (fun a -> List.mem a attrs) t.visible }

let pp ppf t =
  Format.fprintf ppf "infosys: %d objects, attributes {%s}"
    (List.length t.objects)
    (String.concat ", " t.visible)
