(** Information and decision systems of Rough Set Theory (Pawlak 1982),
    the paper's machinery for imprecise/incomplete knowledge (§V.A). *)

type t

val of_table :
  attributes:string list -> (string * string list) list -> t
(** [of_table ~attributes rows] with each row [(object_id, values)] aligned
    with [attributes]. Raises [Invalid_argument] on arity mismatch or
    duplicate object ids. *)

val objects : t -> string list
val attributes : t -> string list
val value : t -> string -> string -> string
(** [value t obj attr]; raises [Invalid_argument] on unknown names. *)

val decision_of : decision:string -> t -> t * string
(** Splits a decision system: returns the system restricted to condition
    attributes and the decision attribute name. Raises [Invalid_argument]
    if [decision] is not an attribute. The returned system still answers
    {!value} for the decision attribute. *)

val restrict_attributes : string list -> t -> t
val pp : Format.formatter -> t -> unit
