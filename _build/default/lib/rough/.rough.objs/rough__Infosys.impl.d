lib/rough/infosys.ml: Format Hashtbl List Printf String
