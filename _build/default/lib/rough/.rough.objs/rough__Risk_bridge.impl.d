lib/rough/risk_bridge.ml: Infosys List Printf Qual Risk
