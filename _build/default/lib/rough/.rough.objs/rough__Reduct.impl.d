lib/rough/reduct.ml: Approx Infosys List Printf String
