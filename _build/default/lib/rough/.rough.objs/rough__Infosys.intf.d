lib/rough/infosys.mli: Format
