lib/rough/risk_bridge.mli: Infosys Qual
