lib/rough/reduct.mli: Infosys
