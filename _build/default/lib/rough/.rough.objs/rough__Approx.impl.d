lib/rough/approx.ml: Hashtbl Infosys List Option String
