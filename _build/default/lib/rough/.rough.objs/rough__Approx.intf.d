lib/rough/approx.mli: Infosys
