(** Attribute reduction for decision systems: reducts (minimal attribute
    subsets preserving the classification power) and the core. Reducts tell
    the analyst which risk factors actually matter — the paper's support
    for focusing expert estimation effort. *)

val reducts : decision:string -> Infosys.t -> string list list
(** All minimal subsets [B] of condition attributes with
    γ(B, d) = γ(C, d). Exhaustive — intended for the tool-scale systems of
    the paper (say ≤ 15 condition attributes). *)

val core : decision:string -> Infosys.t -> string list
(** Intersection of all reducts: attributes no classification can do
    without. *)

type rule = {
  conditions : (string * string) list;
  decision : string * string;
  certain : bool;  (** from the lower approximation (vs possible rule) *)
  support : int;   (** matching objects *)
}

val induce_rules : decision:string -> Infosys.t -> rule list
(** One rule per indiscernibility class (over all condition attributes):
    certain when the class is consistent, possible otherwise (one rule per
    decision value occurring in the class). *)

val rule_to_string : rule -> string
