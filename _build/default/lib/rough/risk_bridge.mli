(** RST applied to uncertain qualitative risk evaluation (§V.A): when an
    O-RA attribute is only known as a {e set} of possible categories, the
    possible worlds span a decision system whose decision is the risk level.
    The three RST regions then separate certain conclusions from spurious
    ones. *)

type uncertain = {
  lm : Qual.Level.t list;   (** possible Loss Magnitude values *)
  lef : Qual.Level.t list;  (** possible Loss Event Frequency values *)
}

val exact : lm:Qual.Level.t -> lef:Qual.Level.t -> uncertain

val possible_risks : uncertain -> Qual.Level.t list
(** Distinct risk outcomes over all possible worlds, ascending. *)

val certain_risk : uncertain -> Qual.Level.t option
(** The risk level when every possible world agrees ([None] otherwise) —
    the positive-region case. *)

val is_sensitive : uncertain -> bool
(** More than one possible outcome: the §V.A criterion that "further
    evaluation is required". *)

val worlds : uncertain -> Infosys.t
(** The underlying decision system: one object per (LM, LEF) combination,
    condition attributes ["lm"]/["lef"], decision ["risk"] — ready for the
    generic {!Approx} and {!Reduct} machinery. *)

val outcome_regions :
  target:Qual.Level.t -> uncertain -> [ `Certain | `Possible | `Excluded ]
(** Status of one candidate conclusion "risk = target". *)
