(** Parser for LTLf formulas.

    Syntax (loosest to tightest binding):
    [U], [R] — [->] — [|] — [&] — unary [!], [X], [WX], [F], [G] — atoms.
    Atoms are lowercase identifiers that may embed [=], [.], [-] (e.g.
    [level=overflow]); [true] and [false] are constants. *)

exception Error of string

val parse : string -> Formula.t
