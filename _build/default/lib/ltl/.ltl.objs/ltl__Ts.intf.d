lib/ltl/ts.mli: Formula Qual Trace
