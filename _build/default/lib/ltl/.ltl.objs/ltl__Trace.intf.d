lib/ltl/trace.mli: Format Formula Qual
