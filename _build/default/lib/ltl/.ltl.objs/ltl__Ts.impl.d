lib/ltl/ts.ml: Hashtbl List Qual Trace
