lib/ltl/parser.ml: Formula List Printf String
