lib/ltl/trace.ml: Array Format Formula Qual String
