lib/ltl/formula.ml: Format List String
