lib/ltl/parser.mli: Formula
