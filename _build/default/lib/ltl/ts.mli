(** Transition systems over qualitative states, with bounded exhaustive LTLf
    checking. This is the model-checking back-end behind the paper's
    "hidden formal method": dynamics produced by the EPA simulator are
    explored trace-by-trace and each trace is evaluated against the LTLf
    requirement.

    Traces end when the horizon is reached, the system deadlocks, or a state
    repeats on the current path (the qualitative systems of the paper settle
    into stable states or small cycles, so a repeated state adds no new
    qualitative behaviour). *)

type t

val make : init:Qual.Qstate.t list -> next:(Qual.Qstate.t -> Qual.Qstate.t list) -> t

val init : t -> Qual.Qstate.t list

val traces : ?horizon:int -> t -> Trace.t list
(** All maximal traces (default horizon 50). Exponential for highly
    non-deterministic systems — the qualitative models here have small
    branching. *)

val reachable : ?horizon:int -> t -> Qual.Qstate.t list
(** Distinct states reachable within the horizon, in BFS order. *)

type verdict = Holds | Counterexample of Trace.t

val check :
  ?horizon:int ->
  ?holds:(Qual.Qstate.t -> string -> bool) ->
  t ->
  Formula.t ->
  verdict
(** Universal check: the formula must hold on every maximal trace; the first
    failing trace is returned as a counterexample. *)

val run : ?horizon:int -> t -> Qual.Qstate.t -> Trace.t
(** Deterministic simulation from one state (first successor at each step),
    ending at horizon / deadlock / first repeated state. *)
