type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Wnext of t
  | Eventually of t
  | Always of t
  | Until of t * t
  | Release of t * t

let atom s = Atom s
let not_ f = Not f

let and_ = function
  | [] -> True
  | [ f ] -> f
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let or_ = function
  | [] -> False
  | [ f ] -> f
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let implies a b = Implies (a, b)
let next f = Next f
let wnext f = Wnext f
let eventually f = Eventually f
let always f = Always f
let until a b = Until (a, b)
let release a b = Release (a, b)

let rec size = function
  | True | False | Atom _ -> 1
  | Not f | Next f | Wnext f | Eventually f | Always f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b) ->
      1 + size a + size b

let atoms f =
  let add acc a = if List.mem a acc then acc else a :: acc in
  let rec go acc = function
    | True | False -> acc
    | Atom a -> add acc a
    | Not f | Next f | Wnext f | Eventually f | Always f -> go acc f
    | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b) ->
        go (go acc a) b
  in
  List.rev (go [] f)

let rec nnf = function
  | True -> True
  | False -> False
  | Atom _ as f -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf (Not a), nnf b)
  | Next f -> Next (nnf f)
  | Wnext f -> Wnext (nnf f)
  | Eventually f -> Eventually (nnf f)
  | Always f -> Always (nnf f)
  | Until (a, b) -> Until (nnf a, nnf b)
  | Release (a, b) -> Release (nnf a, nnf b)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom _ -> Not g
      | Not f -> nnf f
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Implies (a, b) -> And (nnf a, nnf (Not b))
      | Next f -> Wnext (nnf (Not f))
      | Wnext f -> Next (nnf (Not f))
      | Eventually f -> Always (nnf (Not f))
      | Always f -> Eventually (nnf (Not f))
      | Until (a, b) -> Release (nnf (Not a), nnf (Not b))
      | Release (a, b) -> Until (nnf (Not a), nnf (Not b)))

let rec equal a b =
  match a, b with
  | True, True | False, False -> true
  | Atom x, Atom y -> String.equal x y
  | Not x, Not y | Next x, Next y | Wnext x, Wnext y
  | Eventually x, Eventually y | Always x, Always y ->
      equal x y
  | And (x1, y1), And (x2, y2)
  | Or (x1, y1), Or (x2, y2)
  | Implies (x1, y1), Implies (x2, y2)
  | Until (x1, y1), Until (x2, y2)
  | Release (x1, y1), Release (x2, y2) ->
      equal x1 x2 && equal y1 y2
  | ( ( True | False | Atom _ | Not _ | And _ | Or _ | Implies _ | Next _
      | Wnext _ | Eventually _ | Always _ | Until _ | Release _ ),
      _ ) ->
      false

(* Precedence: binary temporal < implies < or < and < unary *)
let rec to_str prec f =
  let paren p s = if prec > p then "(" ^ s ^ ")" else s in
  match f with
  | True -> "true"
  | False -> "false"
  | Atom a -> a
  | Not f -> "!" ^ to_str 4 f
  | Next f -> "X " ^ to_str 4 f
  | Wnext f -> "WX " ^ to_str 4 f
  | Eventually f -> "F " ^ to_str 4 f
  | Always f -> "G " ^ to_str 4 f
  | And (a, b) -> paren 3 (to_str 3 a ^ " & " ^ to_str 4 b)
  | Or (a, b) -> paren 2 (to_str 2 a ^ " | " ^ to_str 3 b)
  | Implies (a, b) -> paren 1 (to_str 2 a ^ " -> " ^ to_str 1 b)
  | Until (a, b) -> paren 0 (to_str 1 a ^ " U " ^ to_str 1 b)
  | Release (a, b) -> paren 0 (to_str 1 a ^ " R " ^ to_str 1 b)

let to_string f = to_str 0 f
let pp ppf f = Format.pp_print_string ppf (to_string f)
