type t = {
  init : Qual.Qstate.t list;
  next : Qual.Qstate.t -> Qual.Qstate.t list;
}

let make ~init ~next = { init; next }
let init ts = ts.init

type verdict = Holds | Counterexample of Trace.t

(* Depth-first enumeration of maximal traces; [on_trace] may stop the
   search by returning false. *)
let iter_traces ?(horizon = 50) ts ~on_trace =
  let exception Stop in
  let rec go path_rev seen depth st =
    let path_rev = st :: path_rev in
    let stop_here =
      depth >= horizon
      || List.exists (Qual.Qstate.equal st) seen
    in
    if stop_here then begin
      if not (on_trace (Trace.of_list (List.rev path_rev))) then raise Stop
    end
    else
      match ts.next st with
      | [] ->
          if not (on_trace (Trace.of_list (List.rev path_rev))) then raise Stop
      | succs ->
          List.iter (fun s -> go path_rev (st :: seen) (depth + 1) s) succs
  in
  try List.iter (fun st -> go [] [] 0 st) ts.init with Stop -> ()

let traces ?horizon ts =
  let acc = ref [] in
  iter_traces ?horizon ts ~on_trace:(fun tr ->
      acc := tr :: !acc;
      true);
  List.rev !acc

let reachable ?(horizon = 50) ts =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let add st =
    let key = Qual.Qstate.to_list st in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.replace seen key ();
      order := st :: !order;
      true
    end
  in
  let frontier = ref (List.filter add ts.init) in
  let depth = ref 0 in
  while !frontier <> [] && !depth < horizon do
    incr depth;
    frontier :=
      List.concat_map ts.next !frontier |> List.filter add
  done;
  List.rev !order

let check ?horizon ?holds ts f =
  let result = ref Holds in
  iter_traces ?horizon ts ~on_trace:(fun tr ->
      if Trace.eval ?holds tr f then true
      else begin
        result := Counterexample tr;
        false
      end);
  !result

let run ?(horizon = 50) ts st =
  let rec go acc seen depth st =
    let acc = st :: acc in
    if depth >= horizon || List.exists (Qual.Qstate.equal st) seen then
      List.rev acc
    else
      match ts.next st with
      | [] -> List.rev acc
      | succ :: _ -> go acc (st :: seen) (depth + 1) succ
  in
  Trace.of_list (go [] [] 0 st)
