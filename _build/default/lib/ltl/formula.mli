(** Linear temporal logic over finite traces (LTLf) — the temporal layer the
    paper borrows from Telingo (§II.C) to express dynamic safety
    requirements such as "the tank never overflows".

    Atomic propositions are opaque strings; evaluation is parameterized by a
    state predicate, so the same formulas work over {!Qual.Qstate.t} traces
    and over ASP-derived interpretations. *)

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t        (** strong next: requires a successor state *)
  | Wnext of t       (** weak next: vacuously true at the last state *)
  | Eventually of t  (** F *)
  | Always of t      (** G *)
  | Until of t * t   (** strong until *)
  | Release of t * t

val atom : string -> t
val not_ : t -> t
val and_ : t list -> t
(** Right-nested conjunction; [and_ \[\] = True]. *)

val or_ : t list -> t
val implies : t -> t -> t
val next : t -> t
val wnext : t -> t
val eventually : t -> t
val always : t -> t
val until : t -> t -> t
val release : t -> t -> t

val size : t -> int
(** Number of syntax nodes. *)

val atoms : t -> string list
(** Distinct atomic propositions, in first-occurrence order. *)

val nnf : t -> t
(** Negation normal form: negations pushed to atoms using finite-trace
    dualities ([¬X φ ≡ WX ¬φ], [¬(a U b) ≡ ¬a R ¬b], …). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
