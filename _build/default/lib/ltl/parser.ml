exception Error of string

type token =
  | TAtom of string
  | TTrue
  | TFalse
  | TNot
  | TAnd
  | TOr
  | TImplies
  | TNext
  | TWnext
  | TEventually
  | TAlways
  | TUntil
  | TRelease
  | TLparen
  | TRparen
  | TEof

let is_atom_start c = (c >= 'a' && c <= 'z') || c = '_'

let is_atom_char c =
  (c >= 'a' && c <= 'z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '=' || c = '.' || c = '-' || c = '\''

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin
      toks := TLparen :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := TRparen :: !toks;
      incr i
    end
    else if c = '!' then begin
      toks := TNot :: !toks;
      incr i
    end
    else if c = '&' then begin
      toks := TAnd :: !toks;
      incr i;
      if !i < n && src.[!i] = '&' then incr i
    end
    else if c = '|' then begin
      toks := TOr :: !toks;
      incr i;
      if !i < n && src.[!i] = '|' then incr i
    end
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then begin
      toks := TImplies :: !toks;
      i := !i + 2
    end
    else if c >= 'A' && c <= 'Z' then begin
      let start = !i in
      while !i < n && ((src.[!i] >= 'A' && src.[!i] <= 'Z') || src.[!i] = 'X') do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      let tok =
        match word with
        | "X" -> TNext
        | "WX" -> TWnext
        | "F" -> TEventually
        | "G" -> TAlways
        | "U" -> TUntil
        | "R" -> TRelease
        | other -> raise (Error (Printf.sprintf "unknown operator %S" other))
      in
      toks := tok :: !toks
    end
    else if is_atom_start c then begin
      let start = !i in
      while !i < n && is_atom_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      let tok =
        match word with
        | "true" -> TTrue
        | "false" -> TFalse
        | a -> TAtom a
      in
      toks := tok :: !toks
    end
    else raise (Error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev (TEof :: !toks)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> TEof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* until/release: right-associative, lowest precedence *)
let rec parse_until st =
  let lhs = parse_implies st in
  match peek st with
  | TUntil ->
      advance st;
      Formula.Until (lhs, parse_until st)
  | TRelease ->
      advance st;
      Formula.Release (lhs, parse_until st)
  | _ -> lhs

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | TImplies ->
      advance st;
      Formula.Implies (lhs, parse_implies st)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | TOr ->
      advance st;
      Formula.Or (lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_unary st in
  match peek st with
  | TAnd ->
      advance st;
      Formula.And (lhs, parse_and st)
  | _ -> lhs

and parse_unary st =
  match peek st with
  | TNot ->
      advance st;
      Formula.Not (parse_unary st)
  | TNext ->
      advance st;
      Formula.Next (parse_unary st)
  | TWnext ->
      advance st;
      Formula.Wnext (parse_unary st)
  | TEventually ->
      advance st;
      Formula.Eventually (parse_unary st)
  | TAlways ->
      advance st;
      Formula.Always (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | TTrue ->
      advance st;
      Formula.True
  | TFalse ->
      advance st;
      Formula.False
  | TAtom a ->
      advance st;
      Formula.Atom a
  | TLparen ->
      advance st;
      let f = parse_until st in
      if peek st = TRparen then begin
        advance st;
        f
      end
      else raise (Error "expected ')'")
  | _ -> raise (Error "expected a formula")

let parse src =
  let st = { toks = tokenize src } in
  let f = parse_until st in
  if peek st <> TEof then raise (Error "trailing input after formula");
  f
