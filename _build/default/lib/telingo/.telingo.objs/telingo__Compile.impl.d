lib/telingo/compile.ml: Asp List Ltl Printf Qual String
