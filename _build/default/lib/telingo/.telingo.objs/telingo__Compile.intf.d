lib/telingo/compile.mli: Asp Ltl
