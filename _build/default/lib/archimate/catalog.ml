type component_type = {
  type_name : string;
  kind : Element.kind;
  default_properties : (string * string) list;
  fault_modes : string list;
}

module Sm = Map.Make (String)

type t = component_type Sm.t

let empty = Sm.empty
let add ct lib = Sm.add ct.type_name ct lib
let find name lib = Sm.find_opt name lib
let types lib = List.map snd (Sm.bindings lib)
let size = Sm.cardinal

let instantiate lib ~type_name ~id ~name =
  match find type_name lib with
  | None ->
      invalid_arg
        (Printf.sprintf "Catalog.instantiate: unknown component type %S"
           type_name)
  | Some ct ->
      let properties =
        ("component_type", ct.type_name)
        :: ("fault_modes", String.concat "," ct.fault_modes)
        :: ct.default_properties
      in
      Element.make ~id ~name ~kind:ct.kind ~properties ()

let ct type_name kind ?(props = []) fault_modes =
  { type_name; kind; default_properties = props; fault_modes }

let standard =
  List.fold_left
    (fun lib c -> add c lib)
    empty
    [
      (* OT field devices *)
      ct "plc" Element.Device
        ~props:[ ("zone", "ot"); ("criticality", "high") ]
        [ "halt"; "wrong_output"; "compromise" ];
      ct "hmi" Element.Device
        ~props:[ ("zone", "ot") ]
        [ "no_signal"; "frozen_display"; "compromise" ];
      ct "sensor" Element.Device
        ~props:[ ("zone", "ot") ]
        [ "stuck_at"; "drift"; "omission" ];
      ct "actuator" Element.Equipment
        ~props:[ ("zone", "ot") ]
        [ "stuck_at_open"; "stuck_at_closed" ];
      ct "valve" Element.Equipment
        ~props:[ ("zone", "ot") ]
        [ "stuck_at_open"; "stuck_at_closed"; "leak" ];
      ct "pump" Element.Equipment
        ~props:[ ("zone", "ot") ]
        [ "halt"; "degraded_flow" ];
      ct "tank" Element.Equipment ~props:[ ("zone", "ot") ] [ "leak"; "rupture" ];
      ct "controller" Element.Application_component
        ~props:[ ("zone", "ot"); ("criticality", "high") ]
        [ "halt"; "wrong_command"; "compromise" ];
      (* IT assets *)
      ct "workstation" Element.Node
        ~props:[ ("zone", "it") ]
        [ "compromise"; "halt" ];
      ct "server" Element.Node
        ~props:[ ("zone", "it") ]
        [ "compromise"; "halt"; "data_loss" ];
      ct "historian" Element.Node
        ~props:[ ("zone", "it") ]
        [ "compromise"; "data_loss" ];
      ct "scada_server" Element.Node
        ~props:[ ("zone", "it"); ("criticality", "high") ]
        [ "compromise"; "halt" ];
      ct "email_client" Element.Application_component
        ~props:[ ("zone", "it") ]
        [ "compromise" ];
      ct "browser" Element.Application_component
        ~props:[ ("zone", "it") ]
        [ "compromise" ];
      ct "firewall" Element.Node
        ~props:[ ("zone", "dmz") ]
        [ "misconfiguration"; "halt" ];
      ct "switch" Element.Communication_network
        ~props:[ ("zone", "it") ]
        [ "halt"; "packet_loss" ];
      ct "ot_network" Element.Communication_network
        ~props:[ ("zone", "ot") ]
        [ "halt"; "packet_loss" ];
    ]
