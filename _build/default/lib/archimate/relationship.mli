(** ArchiMate-style relationships between elements. *)

type access_mode = Read | Write | Read_write

type kind =
  | Composition     (** whole–part, used for asset refinement (§VI) *)
  | Aggregation
  | Assignment      (** active element assigned to behaviour / node *)
  | Realization
  | Serving
  | Access of access_mode
  | Triggering
  | Flow            (** information / material flow, the EPA propagation edges *)
  | Association
  | Specialization

type t = {
  id : string;
  source : string;  (** element id *)
  target : string;  (** element id *)
  kind : kind;
  properties : (string * string) list;
}

val make :
  id:string -> source:string -> target:string -> kind:kind ->
  ?properties:(string * string) list -> unit -> t

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list
val property : string -> t -> string option
val structural : kind -> bool
(** Composition/aggregation/assignment/realization are structural;
    structural relationships define the hierarchical containment used by
    the refinement machinery. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
