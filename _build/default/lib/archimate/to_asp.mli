(** Transformation of the system model into ASP facts ("we transformed the
    model to Answer Set Programming to run the evaluation", §VII).

    Generated vocabulary:
    - [component(Id).] for every element
    - [element_kind(Id, Kind).] and [layer(Id, Layer).]
    - [named(Id, "Name").]
    - [rel(Kind, Src, Tgt).] for every relationship
    - [flow(Src, Tgt).] for flow relationships (the EPA propagation edges)
    - [part_of(Part, Whole).] for composition/aggregation
    - [property(Id, Key, "Value").] for element properties
    - [fault_mode(Id, Mode).] parsed from the ["fault_modes"] property *)

val facts : Model.t -> Asp.Program.t

val sanitize : string -> string
(** Lower-cases and maps non-identifier characters to [_] so that arbitrary
    model ids/kinds are valid ASP constants. *)
