(** Aspect-model merging — Fig. 1 step 1: "the system model results from
    merging the different aspect models (like architecture, dynamics, and
    deployment) of the complete IT/OT system into a single model".

    Unlike {!Model.merge} (disjoint union), aspect models may {e overlap}:
    the same element id can appear in several aspects as long as every
    occurrence agrees on name and kind; properties are unioned, with
    conflicting values reported. *)

type conflict = {
  element : string;
  field : string;   (** "name", "kind" or a property key *)
  values : string list;  (** the disagreeing values, aspect order *)
}

val merge :
  name:string ->
  Model.t list ->
  (Model.t, conflict list) result
(** Merges the aspect models left to right. Relationships with duplicate
    ids must be structurally identical (same source/target/kind), else a
    ["relationship"] conflict is reported. On success the merged model
    carries every element (properties unioned, first aspect wins key
    order) and every relationship once. *)

val pp_conflict : Format.formatter -> conflict -> unit
