(** The merged system model of Fig. 1: a typed graph of elements and
    relationships with id-indexed access and the queries the analysis steps
    need. *)

type t

val empty : name:string -> t
val name : t -> string

val add_element : Element.t -> t -> t
(** Raises [Invalid_argument] on a duplicate element id. *)

val add_relationship : Relationship.t -> t -> t
(** Raises [Invalid_argument] on a duplicate relationship id or a dangling
    endpoint. *)

val remove_element : string -> t -> t
(** Also removes incident relationships. *)

val remove_relationship : string -> t -> t

val element : string -> t -> Element.t option
val element_exn : string -> t -> Element.t
val relationship : string -> t -> Relationship.t option
val elements : t -> Element.t list
val relationships : t -> Relationship.t list
val element_count : t -> int
val relationship_count : t -> int

val update_element : string -> (Element.t -> Element.t) -> t -> t
(** Raises [Not_found] when the id is absent. *)

val find_by_name : string -> t -> Element.t list
val elements_in_layer : Element.layer -> t -> Element.t list
val elements_of_kind : Element.kind -> t -> Element.t list
val with_property : key:string -> t -> Element.t list

val outgoing : string -> t -> Relationship.t list
val incoming : string -> t -> Relationship.t list

val successors : ?kind:Relationship.kind -> string -> t -> Element.t list
val predecessors : ?kind:Relationship.kind -> string -> t -> Element.t list

val parts : string -> t -> Element.t list
(** Direct parts via composition/aggregation (source = whole). *)

val parent : string -> t -> Element.t option
(** The composing whole, if any. *)

val reachable : ?kinds:Relationship.kind list -> string -> t -> Element.t list
(** Transitive successors along the given relationship kinds (default: all),
    excluding the start element, in BFS order. *)

val merge : t -> t -> t
(** Union of the aspect models (§ Fig. 1 step 1); raises
    [Invalid_argument] on conflicting ids. *)

val pp : Format.formatter -> t -> unit
