type conflict = {
  element : string;
  field : string;
  values : string list;
}

let merge_elements (conflicts : conflict list ref) (a : Element.t)
    (b : Element.t) =
  let check field va vb =
    if va <> vb then
      conflicts := { element = a.Element.id; field; values = [ va; vb ] } :: !conflicts
  in
  check "name" a.Element.name b.Element.name;
  check "kind"
    (Element.kind_to_string a.Element.kind)
    (Element.kind_to_string b.Element.kind);
  let merged_properties =
    List.fold_left
      (fun props (k, v) ->
        match List.assoc_opt k props with
        | None -> props @ [ (k, v) ]
        | Some v' when v' = v -> props
        | Some v' ->
            conflicts :=
              { element = a.Element.id; field = k; values = [ v'; v ] }
              :: !conflicts;
            props)
      a.Element.properties b.Element.properties
  in
  { a with Element.properties = merged_properties }

let merge ~name aspects =
  let conflicts = ref [] in
  let elements : (string, Element.t) Hashtbl.t = Hashtbl.create 32 in
  let element_order = ref [] in
  let relationships : (string, Relationship.t) Hashtbl.t = Hashtbl.create 32 in
  let rel_order = ref [] in
  List.iter
    (fun aspect ->
      List.iter
        (fun (e : Element.t) ->
          match Hashtbl.find_opt elements e.Element.id with
          | None ->
              Hashtbl.replace elements e.Element.id e;
              element_order := e.Element.id :: !element_order
          | Some existing ->
              Hashtbl.replace elements e.Element.id
                (merge_elements conflicts existing e))
        (Model.elements aspect);
      List.iter
        (fun (r : Relationship.t) ->
          match Hashtbl.find_opt relationships r.Relationship.id with
          | None ->
              Hashtbl.replace relationships r.Relationship.id r;
              rel_order := r.Relationship.id :: !rel_order
          | Some existing ->
              if
                existing.Relationship.source <> r.Relationship.source
                || existing.Relationship.target <> r.Relationship.target
                || existing.Relationship.kind <> r.Relationship.kind
              then
                conflicts :=
                  {
                    element = r.Relationship.id;
                    field = "relationship";
                    values =
                      [
                        Format.asprintf "%a" Relationship.pp existing;
                        Format.asprintf "%a" Relationship.pp r;
                      ];
                  }
                  :: !conflicts)
        (Model.relationships aspect))
    aspects;
  match List.rev !conflicts with
  | _ :: _ as cs -> Error cs
  | [] ->
      let m =
        List.fold_left
          (fun m id -> Model.add_element (Hashtbl.find elements id) m)
          (Model.empty ~name) (List.rev !element_order)
      in
      Ok
        (List.fold_left
           (fun m id -> Model.add_relationship (Hashtbl.find relationships id) m)
           m (List.rev !rel_order))

let pp_conflict ppf c =
  Format.fprintf ppf "%s/%s: %s" c.element c.field
    (String.concat " vs " c.values)
