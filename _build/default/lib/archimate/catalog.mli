(** Component-type libraries ("component-type libraries support reusing
    already existing sub-models", Fig. 1 step 1).

    A component type is a reusable element template carrying the kind,
    default security/dependability properties, and the fault modes the EPA
    layer injects for instances of that type. *)

type component_type = {
  type_name : string;
  kind : Element.kind;
  default_properties : (string * string) list;
  fault_modes : string list;
}

type t

val empty : t
val add : component_type -> t -> t
(** Replaces an existing type of the same name. *)

val find : string -> t -> component_type option
val types : t -> component_type list
val size : t -> int

val instantiate : t -> type_name:string -> id:string -> name:string -> Element.t
(** Creates an element from a template; the element records its origin in a
    ["component_type"] property and its fault modes in a comma-separated
    ["fault_modes"] property. Raises [Invalid_argument] on unknown types. *)

val standard : t
(** Built-in IT/OT library: PLCs, HMIs, sensors, actuators, valves, tanks,
    workstations, servers, network gear, and the e-mail-client/browser pair
    of the paper's refined Engineering Workstation (Fig. 4). *)
