(** ArchiMate-style model elements. The kind vocabulary covers the layers
    the paper's IT/OT models use (business, application, technology,
    physical, motivation); security metadata is carried in free-form
    properties, as in the Open Group's risk-and-security overlay. *)

type layer =
  | Business
  | Application
  | Technology
  | Physical
  | Motivation

type kind =
  (* business *)
  | Business_actor
  | Business_role
  | Business_process
  | Business_service
  | Business_object
  (* application *)
  | Application_component
  | Application_service
  | Application_interface
  | Data_object
  (* technology *)
  | Node
  | Device
  | System_software
  | Technology_service
  | Communication_network
  | Artifact
  (* physical *)
  | Equipment
  | Facility
  | Distribution_network
  | Material
  (* motivation *)
  | Requirement
  | Constraint_
  | Goal

type t = {
  id : string;
  name : string;
  kind : kind;
  properties : (string * string) list;
}

val make : id:string -> name:string -> kind:kind -> ?properties:(string * string) list -> unit -> t

val layer_of_kind : kind -> layer
val layer : t -> layer

val property : string -> t -> string option
val with_property : string -> string -> t -> t
(** Adds or replaces one property. *)

val kind_to_string : kind -> string
(** Lower-snake-case, stable — used by the textual format and the ASP
    transformation. *)

val kind_of_string : string -> kind option
val layer_to_string : layer -> string
val all_kinds : kind list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
