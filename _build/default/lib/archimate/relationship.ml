type access_mode = Read | Write | Read_write

type kind =
  | Composition
  | Aggregation
  | Assignment
  | Realization
  | Serving
  | Access of access_mode
  | Triggering
  | Flow
  | Association
  | Specialization

type t = {
  id : string;
  source : string;
  target : string;
  kind : kind;
  properties : (string * string) list;
}

let make ~id ~source ~target ~kind ?(properties = []) () =
  { id; source; target; kind; properties }

let kind_to_string = function
  | Composition -> "composition"
  | Aggregation -> "aggregation"
  | Assignment -> "assignment"
  | Realization -> "realization"
  | Serving -> "serving"
  | Access Read -> "access_read"
  | Access Write -> "access_write"
  | Access Read_write -> "access"
  | Triggering -> "triggering"
  | Flow -> "flow"
  | Association -> "association"
  | Specialization -> "specialization"

let all_kinds =
  [
    Composition; Aggregation; Assignment; Realization; Serving; Access Read;
    Access Write; Access Read_write; Triggering; Flow; Association;
    Specialization;
  ]

let kind_of_string s = List.find_opt (fun k -> kind_to_string k = s) all_kinds
let property key r = List.assoc_opt key r.properties

let structural = function
  | Composition | Aggregation | Assignment | Realization -> true
  | Serving | Access _ | Triggering | Flow | Association | Specialization ->
      false

let equal a b = a = b

let pp ppf r =
  Format.fprintf ppf "%s: %s -[%s]-> %s" r.id r.source (kind_to_string r.kind)
    r.target
