(** Textual serialization of system models — a lightweight stand-in for the
    ArchiMate model exchange format.

    {v
    model "Water Tank System"
    element tank "Water Tank" equipment { criticality = "high" }
    element wls "Water Level Sensor" device { }
    relation r1 flow wls -> tank { medium = "signal" }
    v} *)

exception Error of string

val parse : string -> Model.t
val print : Model.t -> string
(** [parse (print m)] reconstructs [m] up to property ordering. *)
