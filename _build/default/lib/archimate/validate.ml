type severity = Error | Warning

type issue = { severity : severity; subject : string; message : string }

let error subject fmt = Printf.ksprintf (fun message -> { severity = Error; subject; message }) fmt
let warning subject fmt = Printf.ksprintf (fun message -> { severity = Warning; subject; message }) fmt

let composition_cycles m =
  (* DFS over composition edges *)
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let issues = ref [] in
  let rec visit id =
    if Hashtbl.mem done_ id then ()
    else if Hashtbl.mem visiting id then
      issues := error id "element is part of a composition cycle" :: !issues
    else begin
      Hashtbl.replace visiting id ();
      List.iter
        (fun (e : Element.t) -> visit e.Element.id)
        (Model.successors ~kind:Relationship.Composition id m);
      Hashtbl.remove visiting id;
      Hashtbl.replace done_ id ()
    end
  in
  List.iter (fun (e : Element.t) -> visit e.Element.id) (Model.elements m);
  !issues

let multiple_parents m =
  List.filter_map
    (fun (e : Element.t) ->
      let parents =
        Model.predecessors ~kind:Relationship.Composition e.Element.id m
      in
      if List.length parents > 1 then
        Some
          (error e.Element.id "element has %d composition parents"
             (List.length parents))
      else None)
    (Model.elements m)

let empty_names m =
  List.filter_map
    (fun (e : Element.t) ->
      if String.trim e.Element.name = "" then
        Some (warning e.Element.id "element has an empty name")
      else None)
    (Model.elements m)

let duplicate_names m =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Element.t) ->
      let k = e.Element.name in
      Hashtbl.replace tbl k (e.Element.id :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    (Model.elements m);
  Hashtbl.fold
    (fun name ids acc ->
      if List.length ids > 1 && String.trim name <> "" then
        warning (String.concat "," (List.rev ids)) "duplicate element name %S" name
        :: acc
      else acc)
    tbl []

let isolated m =
  List.filter_map
    (fun (e : Element.t) ->
      if
        Model.outgoing e.Element.id m = []
        && Model.incoming e.Element.id m = []
        && Model.element_count m > 1
      then Some (warning e.Element.id "element has no relationships")
      else None)
    (Model.elements m)

let flow_into_motivation m =
  List.filter_map
    (fun (r : Relationship.t) ->
      if r.Relationship.kind <> Relationship.Flow then None
      else
        let touches_motivation id =
          match Model.element id m with
          | Some e -> Element.layer e = Element.Motivation
          | None -> false
        in
        if touches_motivation r.Relationship.source || touches_motivation r.Relationship.target
        then Some (error r.Relationship.id "flow relationship touches a motivation element")
        else None)
    (Model.relationships m)

let self_loops m =
  List.filter_map
    (fun (r : Relationship.t) ->
      if r.Relationship.source = r.Relationship.target then
        Some (warning r.Relationship.id "self-loop relationship")
      else None)
    (Model.relationships m)

let run m =
  let issues =
    composition_cycles m @ multiple_parents m @ flow_into_motivation m
    @ empty_names m @ duplicate_names m @ isolated m @ self_loops m
  in
  let errors, warnings =
    List.partition (fun i -> i.severity = Error) issues
  in
  errors @ warnings

let is_valid m = List.for_all (fun i -> i.severity <> Error) (run m)

let pp_issue ppf i =
  Format.fprintf ppf "[%s] %s: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.subject i.message
