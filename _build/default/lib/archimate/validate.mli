(** Structural validation of system models ("system validation model",
    §II.C): errors make a model unusable for analysis, warnings flag likely
    modeling mistakes the sensitivity-analysis support should draw the
    analyst's eye to. *)

type severity = Error | Warning

type issue = { severity : severity; subject : string; message : string }

val run : Model.t -> issue list
(** All issues, errors first. Checked rules:
    - composition cycles (error)
    - multiple composition parents (error)
    - empty element names (warning)
    - duplicate element names (warning)
    - isolated elements — no incident relationship (warning)
    - flow relationships touching motivation-layer elements (error)
    - self-loop relationships (warning) *)

val is_valid : Model.t -> bool
(** No [Error]-severity issues. *)

val pp_issue : Format.formatter -> issue -> unit
