lib/archimate/aspect.ml: Element Format Hashtbl List Model Relationship String
