lib/archimate/catalog.ml: Element List Map Printf String
