lib/archimate/relationship.ml: Format List
