lib/archimate/to_asp.mli: Asp Model
