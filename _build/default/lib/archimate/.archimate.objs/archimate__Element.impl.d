lib/archimate/element.ml: Format List
