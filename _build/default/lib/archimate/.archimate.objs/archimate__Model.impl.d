lib/archimate/model.ml: Element Format Hashtbl List Map Option Printf Relationship String
