lib/archimate/validate.ml: Element Format Hashtbl List Model Option Printf Relationship String
