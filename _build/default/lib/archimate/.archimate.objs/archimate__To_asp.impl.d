lib/archimate/to_asp.ml: Asp Buffer Element List Model Relationship String
