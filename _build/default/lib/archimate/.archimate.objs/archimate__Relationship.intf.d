lib/archimate/relationship.mli: Format
