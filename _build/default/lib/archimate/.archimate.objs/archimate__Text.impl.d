lib/archimate/text.ml: Buffer Element List Model Printf Relationship String
