lib/archimate/aspect.mli: Format Model
