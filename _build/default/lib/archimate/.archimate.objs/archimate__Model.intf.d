lib/archimate/model.mli: Element Format Relationship
