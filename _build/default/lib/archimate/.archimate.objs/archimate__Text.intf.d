lib/archimate/text.mli: Model
