lib/archimate/validate.mli: Format Model
