lib/archimate/dot.mli: Element Model
