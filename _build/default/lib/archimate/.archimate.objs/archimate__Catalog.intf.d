lib/archimate/catalog.mli: Element
