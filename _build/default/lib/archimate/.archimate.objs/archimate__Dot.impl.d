lib/archimate/dot.ml: Buffer Element List Model Printf Relationship String
