lib/archimate/element.mli: Format
