let element_shape = function
  | Element.Business -> "ellipse"
  | Element.Application -> "box"
  | Element.Technology -> "box3d"
  | Element.Physical -> "component"
  | Element.Motivation -> "note"

let edge_attrs = function
  | Relationship.Composition -> "arrowtail=diamond, dir=both, arrowhead=none"
  | Relationship.Aggregation -> "arrowtail=odiamond, dir=both, arrowhead=none"
  | Relationship.Assignment -> "arrowhead=dot"
  | Relationship.Realization -> "style=dashed, arrowhead=empty"
  | Relationship.Serving -> "style=dashed"
  | Relationship.Access _ -> "style=dotted"
  | Relationship.Triggering -> "arrowhead=open"
  | Relationship.Flow -> "arrowhead=vee"
  | Relationship.Association -> "arrowhead=none"
  | Relationship.Specialization -> "arrowhead=onormal"

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let render m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n  node [fontsize=10];\n"
       (escape (Model.name m)));
  List.iteri
    (fun i layer ->
      let elements = Model.elements_in_layer layer m in
      if elements <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" i
             (Element.layer_to_string layer));
        List.iter
          (fun (e : Element.t) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s [label=\"%s\", shape=%s];\n"
                 e.Element.id (escape e.Element.name) (element_shape layer)))
          elements;
        Buffer.add_string buf "  }\n"
      end)
    [
      Element.Business; Element.Application; Element.Technology;
      Element.Physical; Element.Motivation;
    ];
  List.iter
    (fun (r : Relationship.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [%s];\n" r.Relationship.source
           r.Relationship.target
           (edge_attrs r.Relationship.kind)))
    (Model.relationships m);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
