type layer =
  | Business
  | Application
  | Technology
  | Physical
  | Motivation

type kind =
  | Business_actor
  | Business_role
  | Business_process
  | Business_service
  | Business_object
  | Application_component
  | Application_service
  | Application_interface
  | Data_object
  | Node
  | Device
  | System_software
  | Technology_service
  | Communication_network
  | Artifact
  | Equipment
  | Facility
  | Distribution_network
  | Material
  | Requirement
  | Constraint_
  | Goal

type t = {
  id : string;
  name : string;
  kind : kind;
  properties : (string * string) list;
}

let make ~id ~name ~kind ?(properties = []) () = { id; name; kind; properties }

let layer_of_kind = function
  | Business_actor | Business_role | Business_process | Business_service
  | Business_object ->
      Business
  | Application_component | Application_service | Application_interface
  | Data_object ->
      Application
  | Node | Device | System_software | Technology_service
  | Communication_network | Artifact ->
      Technology
  | Equipment | Facility | Distribution_network | Material -> Physical
  | Requirement | Constraint_ | Goal -> Motivation

let layer e = layer_of_kind e.kind
let property key e = List.assoc_opt key e.properties

let with_property key value e =
  { e with properties = (key, value) :: List.remove_assoc key e.properties }

let kind_to_string = function
  | Business_actor -> "business_actor"
  | Business_role -> "business_role"
  | Business_process -> "business_process"
  | Business_service -> "business_service"
  | Business_object -> "business_object"
  | Application_component -> "application_component"
  | Application_service -> "application_service"
  | Application_interface -> "application_interface"
  | Data_object -> "data_object"
  | Node -> "node"
  | Device -> "device"
  | System_software -> "system_software"
  | Technology_service -> "technology_service"
  | Communication_network -> "communication_network"
  | Artifact -> "artifact"
  | Equipment -> "equipment"
  | Facility -> "facility"
  | Distribution_network -> "distribution_network"
  | Material -> "material"
  | Requirement -> "requirement"
  | Constraint_ -> "constraint"
  | Goal -> "goal"

let all_kinds =
  [
    Business_actor; Business_role; Business_process; Business_service;
    Business_object; Application_component; Application_service;
    Application_interface; Data_object; Node; Device; System_software;
    Technology_service; Communication_network; Artifact; Equipment; Facility;
    Distribution_network; Material; Requirement; Constraint_; Goal;
  ]

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

let layer_to_string = function
  | Business -> "business"
  | Application -> "application"
  | Technology -> "technology"
  | Physical -> "physical"
  | Motivation -> "motivation"

let equal a b = a = b

let pp ppf e =
  Format.fprintf ppf "%s %S (%s)" e.id e.name (kind_to_string e.kind)
