module Sm = Map.Make (String)

type t = {
  name : string;
  elements : Element.t Sm.t;
  relationships : Relationship.t Sm.t;
  order : string list; (* element insertion order, newest first *)
  rel_order : string list;
}

let empty ~name =
  { name; elements = Sm.empty; relationships = Sm.empty; order = []; rel_order = [] }

let name m = m.name

let add_element e m =
  if Sm.mem e.Element.id m.elements then
    invalid_arg (Printf.sprintf "Model.add_element: duplicate id %s" e.Element.id);
  { m with elements = Sm.add e.Element.id e m.elements; order = e.Element.id :: m.order }

let add_relationship r m =
  if Sm.mem r.Relationship.id m.relationships then
    invalid_arg
      (Printf.sprintf "Model.add_relationship: duplicate id %s" r.Relationship.id);
  let check_endpoint what id =
    if not (Sm.mem id m.elements) then
      invalid_arg
        (Printf.sprintf "Model.add_relationship: %s endpoint %s of %s not in model"
           what id r.Relationship.id)
  in
  check_endpoint "source" r.Relationship.source;
  check_endpoint "target" r.Relationship.target;
  {
    m with
    relationships = Sm.add r.Relationship.id r m.relationships;
    rel_order = r.Relationship.id :: m.rel_order;
  }

let remove_relationship id m =
  {
    m with
    relationships = Sm.remove id m.relationships;
    rel_order = List.filter (fun i -> i <> id) m.rel_order;
  }

let remove_element id m =
  let incident =
    Sm.fold
      (fun rid r acc ->
        if r.Relationship.source = id || r.Relationship.target = id then
          rid :: acc
        else acc)
      m.relationships []
  in
  let m = List.fold_left (fun m rid -> remove_relationship rid m) m incident in
  {
    m with
    elements = Sm.remove id m.elements;
    order = List.filter (fun i -> i <> id) m.order;
  }

let element id m = Sm.find_opt id m.elements

let element_exn id m =
  match element id m with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Model.element_exn: no element %s" id)

let relationship id m = Sm.find_opt id m.relationships
let elements m = List.rev_map (fun id -> Sm.find id m.elements) m.order
let relationships m = List.rev_map (fun id -> Sm.find id m.relationships) m.rel_order
let element_count m = Sm.cardinal m.elements
let relationship_count m = Sm.cardinal m.relationships

let update_element id f m =
  match Sm.find_opt id m.elements with
  | None -> raise Not_found
  | Some e ->
      let e' = f e in
      if e'.Element.id <> id then
        invalid_arg "Model.update_element: update must not change the id";
      { m with elements = Sm.add id e' m.elements }

let find_by_name n m =
  List.filter (fun e -> e.Element.name = n) (elements m)

let elements_in_layer l m =
  List.filter (fun e -> Element.layer e = l) (elements m)

let elements_of_kind k m =
  List.filter (fun e -> e.Element.kind = k) (elements m)

let with_property ~key m =
  List.filter (fun e -> Element.property key e <> None) (elements m)

let outgoing id m =
  List.filter (fun r -> r.Relationship.source = id) (relationships m)

let incoming id m =
  List.filter (fun r -> r.Relationship.target = id) (relationships m)

let matching_kind kind r =
  match kind with None -> true | Some k -> r.Relationship.kind = k

let successors ?kind id m =
  outgoing id m
  |> List.filter (matching_kind kind)
  |> List.filter_map (fun r -> element r.Relationship.target m)

let predecessors ?kind id m =
  incoming id m
  |> List.filter (matching_kind kind)
  |> List.filter_map (fun r -> element r.Relationship.source m)

let parts id m =
  outgoing id m
  |> List.filter (fun r ->
         match r.Relationship.kind with
         | Relationship.Composition | Relationship.Aggregation -> true
         | _ -> false)
  |> List.filter_map (fun r -> element r.Relationship.target m)

let parent id m =
  incoming id m
  |> List.find_opt (fun r -> r.Relationship.kind = Relationship.Composition)
  |> fun r -> Option.bind r (fun r -> element r.Relationship.source m)

let reachable ?kinds id m =
  let matches r =
    match kinds with
    | None -> true
    | Some ks -> List.mem r.Relationship.kind ks
  in
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen id ();
  let order = ref [] in
  let frontier = ref [ id ] in
  while !frontier <> [] do
    let next =
      List.concat_map
        (fun eid ->
          outgoing eid m |> List.filter matches
          |> List.filter_map (fun r ->
                 let tgt = r.Relationship.target in
                 if Hashtbl.mem seen tgt then None
                 else begin
                   Hashtbl.replace seen tgt ();
                   order := tgt :: !order;
                   Some tgt
                 end))
        !frontier
    in
    frontier := next
  done;
  List.rev_map (fun eid -> Sm.find eid m.elements) !order

let merge a b =
  let m =
    List.fold_left (fun m e -> add_element e m) a (List.rev (elements b) |> List.rev)
  in
  List.fold_left (fun m r -> add_relationship r m) m (relationships b)

let pp ppf m =
  Format.fprintf ppf "model %S: %d elements, %d relationships" m.name
    (element_count m) (relationship_count m)
