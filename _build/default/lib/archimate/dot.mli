(** Graphviz rendering of system models — the visual counterpart of the
    Fig. 4 diagrams. Elements are grouped into layer clusters; relationship
    kinds map to edge styles (composition: diamond tail, flow: solid,
    serving: dashed, access: dotted). *)

val render : Model.t -> string
(** A complete [digraph] document. *)

val element_shape : Element.layer -> string
(** The node shape used for a layer (exposed for tests). *)
