(** An ASP program: an ordered collection of rules plus [#show]-style
    projection directives. *)

type t

val empty : t
val of_rules : Rule.t list -> t
val rules : t -> Rule.t list
val add : Rule.t -> t -> t
val add_all : Rule.t list -> t -> t
val append : t -> t -> t
val size : t -> int

val shows : t -> (string * int) list
(** Predicate signatures marked with [#show p/n.]; empty means show all. *)

val add_show : string * int -> t -> t

val predicates : t -> (string * int) list
(** All predicate signatures occurring in the program. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
