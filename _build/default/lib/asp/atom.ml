type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let prop pred = { pred; args = [] }
let arity a = List.length a.args
let signature a = (a.pred, arity a)

let equal a b =
  String.equal a.pred b.pred
  && List.length a.args = List.length b.args
  && List.for_all2 Term.equal a.args b.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let is_ground a = List.for_all Term.is_ground a.args

let vars a =
  let add acc v = if List.mem v acc then acc else v :: acc in
  List.rev
    (List.fold_left (fun acc t -> List.fold_left add acc (Term.vars t)) [] a.args)

let substitute s a = { a with args = List.map (Term.substitute s) a.args }
let eval a = { a with args = List.map Term.eval a.args }

let to_string a =
  match a.args with
  | [] -> a.pred
  | args ->
      Printf.sprintf "%s(%s)" a.pred
        (String.concat "," (List.map Term.to_string args))

let pp ppf a = Format.pp_print_string ppf (to_string a)
