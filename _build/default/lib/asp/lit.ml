type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Pos of Atom.t
  | Neg of Atom.t
  | Cmp of Term.t * cmp * Term.t
  | Count of count

and agg_kind = Cardinality | Summation

and count = {
  kind : agg_kind;
  terms : Term.t list;
  cond : t list;
  op : cmp;
  bound : Term.t;
}

let pos a = Pos a
let neg a = Neg a

let cmp_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let cmp_of_string = function
  | "==" | "=" -> Some Eq
  | "!=" | "<>" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let add_var acc v = if List.mem v acc then acc else v :: acc

let rec vars = function
  | Pos a | Neg a -> Atom.vars a
  | Cmp (l, _, r) ->
      List.rev
        (List.fold_left add_var
           (List.fold_left add_var [] (Term.vars l))
           (Term.vars r))
  | Count { terms; cond; bound; _ } ->
      let acc =
        List.fold_left
          (fun acc t -> List.fold_left add_var acc (Term.vars t))
          [] terms
      in
      let acc =
        List.fold_left (fun acc l -> List.fold_left add_var acc (vars l)) acc cond
      in
      List.rev (List.fold_left add_var acc (Term.vars bound))

let rec is_ground = function
  | Pos a | Neg a -> Atom.is_ground a
  | Cmp (l, _, r) -> Term.is_ground l && Term.is_ground r
  | Count { terms; cond; bound; _ } ->
      List.for_all Term.is_ground terms
      && List.for_all is_ground cond
      && Term.is_ground bound

let rec substitute s = function
  | Pos a -> Pos (Atom.substitute s a)
  | Neg a -> Neg (Atom.substitute s a)
  | Cmp (l, op, r) -> Cmp (Term.substitute s l, op, Term.substitute s r)
  | Count { kind; terms; cond; op; bound } ->
      Count
        {
          kind;
          terms = List.map (Term.substitute s) terms;
          cond = List.map (substitute s) cond;
          op;
          bound = Term.substitute s bound;
        }

let eval_cmp op l r =
  let l = Term.eval l and r = Term.eval r in
  let c = Term.compare l r in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let atom = function Pos a | Neg a -> Some a | Cmp _ | Count _ -> None

let rec to_string = function
  | Pos a -> Atom.to_string a
  | Neg a -> "not " ^ Atom.to_string a
  | Cmp (l, op, r) ->
      Printf.sprintf "%s %s %s" (Term.to_string l) (cmp_to_string op)
        (Term.to_string r)
  | Count { kind; terms; cond; op; bound } ->
      let tuple = String.concat "," (List.map Term.to_string terms) in
      let cond_str =
        match cond with
        | [] -> ""
        | cond -> " : " ^ String.concat ", " (List.map to_string cond)
      in
      let name = match kind with Cardinality -> "#count" | Summation -> "#sum" in
      Printf.sprintf "%s { %s%s } %s %s" name tuple cond_str (cmp_to_string op)
        (Term.to_string bound)

let pp ppf l = Format.pp_print_string ppf (to_string l)
