lib/asp/deps.mli: Program
