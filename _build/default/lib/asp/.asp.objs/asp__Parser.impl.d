lib/asp/parser.ml: Array Atom Lexer List Lit Option Printf Program Rule Term
