lib/asp/program.mli: Format Rule
