lib/asp/lexer.mli:
