lib/asp/rule.mli: Atom Format Lit Term
