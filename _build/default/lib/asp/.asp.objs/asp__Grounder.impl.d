lib/asp/grounder.ml: Atom Ground Hashtbl List Lit Model Printf Program Rule String Term
