lib/asp/model.mli: Atom Format Set
