lib/asp/deps.ml: Atom Hashtbl List Lit Map Option Program Rule Set
