lib/asp/atom.mli: Format Term
