lib/asp/atom.ml: Format List Printf String Term
