lib/asp/lit.mli: Atom Format Term
