lib/asp/solver.ml: Array Atom Ground Hashtbl List Lit Model Option Printf Stdlib Term
