lib/asp/ground.mli: Atom Format Lit Model Term
