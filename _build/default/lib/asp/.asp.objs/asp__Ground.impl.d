lib/asp/ground.ml: Atom Format List Lit Model Printf String Term
