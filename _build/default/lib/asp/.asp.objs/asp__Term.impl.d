lib/asp/term.ml: Format List Printf Stdlib String
