lib/asp/solver.mli: Ground Model
