lib/asp/model.ml: Atom Format List Option Printf Set Stdlib String
