lib/asp/grounder.mli: Ground Program
