lib/asp/lit.ml: Atom Format List Printf String Term
