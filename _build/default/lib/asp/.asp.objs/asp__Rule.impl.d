lib/asp/rule.ml: Atom Format List Lit Printf String Term
