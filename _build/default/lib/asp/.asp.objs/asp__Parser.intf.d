lib/asp/parser.mli: Atom Program Rule Term
