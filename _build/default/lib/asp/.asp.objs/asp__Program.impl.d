lib/asp/program.ml: Atom Format List Lit Printf Rule String
