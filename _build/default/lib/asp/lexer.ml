type token =
  | IDENT of string
  | VAR of string
  | INT of int
  | STRING of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT | AT
  | IF
  | WEAKIF
  | NOT
  | OP of string
  | HASH of string
  | EOF

type located = { token : token; line : int; col : int }

exception Error of string

let error line col fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d, col %d: %s" line col s))) fmt

let is_lower c = (c >= 'a' && c <= 'z')
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let emit tok l c = tokens := { token = tok; line = l; col = c } :: !tokens in
  while !i < n do
    let l = !line and c = !col in
    let ch = src.[!i] in
    if ch = ' ' || ch = '\t' || ch = '\r' || ch = '\n' then advance ()
    else if ch = '%' then begin
      (* %* ... *% block comment, otherwise line comment *)
      if peek 1 = Some '*' then begin
        advance ();
        advance ();
        let rec skip () =
          if !i >= n then error l c "unterminated block comment"
          else if src.[!i] = '*' && peek 1 = Some '%' then begin
            advance ();
            advance ()
          end
          else begin
            advance ();
            skip ()
          end
        in
        skip ()
      end
      else
        while !i < n && src.[!i] <> '\n' do
          advance ()
        done
    end
    else if is_digit ch then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      emit (INT (int_of_string (String.sub src start (!i - start)))) l c
    end
    else if is_lower ch then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      emit (if word = "not" then NOT else IDENT word) l c
    end
    else if is_upper ch then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (VAR (String.sub src start (!i - start))) l c
    end
    else if ch = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let rec scan () =
        if !i >= n then error l c "unterminated string literal"
        else
          match src.[!i] with
          | '"' -> advance ()
          | '\\' -> (
              advance ();
              if !i >= n then error l c "unterminated escape"
              else
                let e = src.[!i] in
                advance ();
                match e with
                | 'n' -> Buffer.add_char buf '\n'; scan ()
                | 't' -> Buffer.add_char buf '\t'; scan ()
                | '"' -> Buffer.add_char buf '"'; scan ()
                | '\\' -> Buffer.add_char buf '\\'; scan ()
                | other -> error l c "unknown escape \\%c" other)
          | other ->
              Buffer.add_char buf other;
              advance ();
              scan ()
      in
      scan ();
      emit (STRING (Buffer.contents buf)) l c
    end
    else if ch = '#' then begin
      advance ();
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      if !i = start then error l c "expected directive name after #";
      emit (HASH (String.sub src start (!i - start))) l c
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some ":-" -> advance (); advance (); emit IF l c
      | Some ":~" -> advance (); advance (); emit WEAKIF l c
      | Some ("==" | "!=" | "<>" | "<=" | ">=" as op) ->
          advance (); advance ();
          emit (OP (if op = "<>" then "!=" else op)) l c
      | Some ".." -> advance (); advance (); emit (OP "..") l c
      | _ -> (
          advance ();
          match ch with
          | '(' -> emit LPAREN l c
          | ')' -> emit RPAREN l c
          | '{' -> emit LBRACE l c
          | '}' -> emit RBRACE l c
          | '[' -> emit LBRACKET l c
          | ']' -> emit RBRACKET l c
          | ',' -> emit COMMA l c
          | ';' -> emit SEMI l c
          | ':' -> emit COLON l c
          | '.' -> emit DOT l c
          | '@' -> emit AT l c
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' ->
              emit (OP (String.make 1 ch)) l c
          | other -> error l c "unexpected character %C" other)
    end
  done;
  emit EOF !line !col;
  List.rev !tokens

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | VAR s -> Printf.sprintf "variable %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | AT -> "'@'"
  | IF -> "':-'"
  | WEAKIF -> "':~'"
  | NOT -> "'not'"
  | OP s -> Printf.sprintf "operator %S" s
  | HASH s -> Printf.sprintf "directive #%s" s
  | EOF -> "end of input"
