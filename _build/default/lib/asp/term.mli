(** Terms of the ASP language: constants, integers, variables and compound
    terms. Arithmetic function symbols ["+"], ["-"], ["*"], ["/"], ["abs"]
    evaluate over integers during grounding. *)

type t =
  | Const of string        (** lowercase symbolic constant *)
  | Int of int
  | Str of string          (** quoted string constant *)
  | Var of string          (** uppercase variable *)
  | Func of string * t list  (** compound term / arithmetic expression *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_ground : t -> bool
val vars : t -> string list
(** Variables in order of first occurrence, without duplicates. *)

type subst = (string * t) list

val substitute : subst -> t -> t

val eval : t -> t
(** Normalize a ground term by evaluating arithmetic function symbols over
    integer arguments; non-arithmetic structure is preserved. Raises
    [Invalid_argument] on arithmetic over non-integers, division by zero, or
    a non-ground term. *)

val eval_int : t -> int option
(** [Some n] when {!eval} yields [Int n]. *)

val arith_ops : string list
(** Function symbols interpreted arithmetically by {!eval}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
