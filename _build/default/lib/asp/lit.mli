(** Body literals: positive/default-negated atoms and built-in comparisons. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Pos of Atom.t            (** [p(...)] *)
  | Neg of Atom.t            (** [not p(...)] — default negation *)
  | Cmp of Term.t * cmp * Term.t  (** built-in comparison, e.g. [X < Y+1] *)
  | Count of count
      (** [#count { t1,…,tk : cond } OP bound] or
          [#sum { w,t2,…,tk : cond } OP bound] *)

and agg_kind =
  | Cardinality  (** [#count]: number of distinct satisfied tuples *)
  | Summation    (** [#sum]: sum of the first (integer) tuple component
                     over distinct satisfied tuples *)

and count = {
  kind : agg_kind;
  terms : Term.t list;  (** the aggregated tuple *)
  cond : t list;        (** element condition; must not nest aggregates *)
  op : cmp;
  bound : Term.t;
}
(** Aggregate literal: the aggregated value over the distinct ground
    instances of [terms] whose [cond] holds, compared against [bound].
    Semantically the condition is treated like negation for stratification
    purposes: it must be fully decided in a strictly lower stratum. *)

val pos : Atom.t -> t
val neg : Atom.t -> t
val cmp_to_string : cmp -> string
val cmp_of_string : string -> cmp option

val vars : t -> string list
val is_ground : t -> bool
val substitute : Term.subst -> t -> t

val eval_cmp : cmp -> Term.t -> Term.t -> bool
(** Evaluate a ground comparison. Integers compare arithmetically; other
    ground terms compare structurally for [Eq]/[Ne] and by term order for
    the rest. Raises [Invalid_argument] on non-ground operands. *)

val atom : t -> Atom.t option
(** The underlying atom of a [Pos]/[Neg] literal. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
