(** Tokenizer for the clingo-like concrete syntax. *)

type token =
  | IDENT of string   (** lowercase identifier *)
  | VAR of string     (** uppercase / [_]-prefixed variable *)
  | INT of int
  | STRING of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT | AT
  | IF        (** [:-] *)
  | WEAKIF    (** [:~] *)
  | NOT
  | OP of string      (** comparison / arithmetic operator *)
  | HASH of string    (** directive name after [#] *)
  | EOF

type located = { token : token; line : int; col : int }

exception Error of string
(** Raised on malformed input, with position information in the message. *)

val tokenize : string -> located list
val token_to_string : token -> string
