(** Safe bottom-up grounder.

    Instantiation proceeds in two phases: a fixpoint over the positive
    projection of the program builds an over-approximating atom universe,
    then every rule is instantiated against that universe. Built-in
    comparisons are evaluated during instantiation (an [X = expr] equality
    with a ground right-hand side acts as an assignment, as in clingo).

    Safety: every variable of a rule must be bound by a positive body
    literal, an assignment, or — for choice elements — the element's own
    condition. *)

exception Unsafe of string
(** A rule violates the safety condition. *)

exception Overflow of string
(** The universe exceeded [max_atoms] (non-terminating arithmetic recursion
    such as [p(X+1) :- p(X)] without a bound). *)

val ground : ?max_atoms:int -> Program.t -> Ground.t
(** [max_atoms] defaults to 200_000. *)
