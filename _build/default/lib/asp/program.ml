type t = { rules : Rule.t list; shows : (string * int) list }

let empty = { rules = []; shows = [] }
let of_rules rules = { rules; shows = [] }
let rules p = p.rules
let add r p = { p with rules = p.rules @ [ r ] }
let add_all rs p = { p with rules = p.rules @ rs }
let append a b = { rules = a.rules @ b.rules; shows = a.shows @ b.shows }
let size p = List.length p.rules
let shows p = p.shows
let add_show s p = { p with shows = p.shows @ [ s ] }

let predicates p =
  let add acc sg = if List.mem sg acc then acc else sg :: acc in
  let of_lit acc l =
    match Lit.atom l with Some a -> add acc (Atom.signature a) | None -> acc
  in
  List.rev
    (List.fold_left
       (fun acc r ->
         let acc =
           List.fold_left (fun acc a -> add acc (Atom.signature a)) acc
             (Rule.head_atoms r)
         in
         List.fold_left of_lit acc (Rule.body r))
       [] p.rules)

let to_string p =
  let rules = List.map Rule.to_string p.rules in
  let shows =
    List.map (fun (pr, n) -> Printf.sprintf "#show %s/%d." pr n) p.shows
  in
  String.concat "\n" (rules @ shows)

let pp ppf p = Format.pp_print_string ppf (to_string p)
