type t =
  | Const of string
  | Int of int
  | Str of string
  | Var of string
  | Func of string * t list

type subst = (string * t) list

let rec equal a b =
  match a, b with
  | Const x, Const y -> String.equal x y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Var x, Var y -> String.equal x y
  | Func (f, xs), Func (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 equal xs ys
  | (Const _ | Int _ | Str _ | Var _ | Func _), _ -> false

let rec compare a b =
  let tag = function
    | Int _ -> 0
    | Const _ -> 1
    | Str _ -> 2
    | Var _ -> 3
    | Func _ -> 4
  in
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Const x, Const y | Str x, Str y | Var x, Var y -> String.compare x y
  | Func (f, xs), Func (g, ys) ->
      let c = String.compare f g in
      if c <> 0 then c else List.compare compare xs ys
  | _ -> Stdlib.compare (tag a) (tag b)

let rec is_ground = function
  | Const _ | Int _ | Str _ -> true
  | Var _ -> false
  | Func (_, args) -> List.for_all is_ground args

let vars t =
  let rec go acc = function
    | Const _ | Int _ | Str _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Func (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec substitute s = function
  | (Const _ | Int _ | Str _) as t -> t
  | Var v as t -> ( match List.assoc_opt v s with Some t' -> t' | None -> t)
  | Func (f, args) -> Func (f, List.map (substitute s) args)

let arith_ops = [ "+"; "-"; "*"; "/"; "abs"; "min"; "max"; "mod" ]

let rec eval t =
  match t with
  | Const _ | Int _ | Str _ -> t
  | Var v -> invalid_arg (Printf.sprintf "Term.eval: non-ground term (variable %s)" v)
  | Func (f, args) when List.mem f arith_ops -> (
      let args = List.map eval args in
      let ints =
        List.map
          (function
            | Int n -> n
            | other ->
                invalid_arg
                  (Printf.sprintf "Term.eval: arithmetic on non-integer %s"
                     (to_string other)))
          args
      in
      match f, ints with
      | "+", [ a; b ] -> Int (a + b)
      | "-", [ a; b ] -> Int (a - b)
      | "-", [ a ] -> Int (-a)
      | "*", [ a; b ] -> Int (a * b)
      | "/", [ a; b ] ->
          if b = 0 then invalid_arg "Term.eval: division by zero" else Int (a / b)
      | "mod", [ a; b ] ->
          if b = 0 then invalid_arg "Term.eval: modulo by zero" else Int (a mod b)
      | "abs", [ a ] -> Int (abs a)
      | "min", [ a; b ] -> Int (Stdlib.min a b)
      | "max", [ a; b ] -> Int (Stdlib.max a b)
      | _ ->
          invalid_arg
            (Printf.sprintf "Term.eval: bad arity for arithmetic %s/%d" f
               (List.length ints)))
  | Func (f, args) -> Func (f, List.map eval args)

and to_string t =
  match t with
  | Const c -> c
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Var v -> v
  | Func (f, [ a; b ]) when List.mem f [ "+"; "-"; "*"; "/" ] ->
      Printf.sprintf "(%s%s%s)" (to_string a) f (to_string b)
  | Func (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat "," (List.map to_string args))

let eval_int t = match eval t with Int n -> Some n | _ -> None
let pp ppf t = Format.pp_print_string ppf (to_string t)
