(** Recursive-descent parser for the clingo-like concrete syntax.

    Supported statements:
    - facts and normal rules: [p(X) :- q(X), not r(X), X < 3.]
    - choice rules: [1 { a(X) : b(X) } 2 :- c.]
    - integrity constraints: [:- p, q.]
    - weak constraints: [:~ p(X). \[1@2, X\]]
    - counting aggregates in bodies:
      [big(G) :- group(G), #count { X : member(G, X) } >= 2.]
    - [#show p/n.] directives
    - interval facts: [time(0..5).] expand to one fact per value
    - [%] line comments and [%* … *%] block comments. *)

exception Error of string

val parse_program : string -> Program.t
val parse_rule : string -> Rule.t
(** Parse a single statement; raises {!Error} if input has none or several. *)

val parse_term : string -> Term.t
val parse_atom : string -> Atom.t
