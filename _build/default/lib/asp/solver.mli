(** Stable-model enumeration for ground programs.

    Strategy: the candidate space is spanned by the choice-element atoms
    (plus, for non-stratified programs, the atoms occurring under default
    negation). For each guess the deterministic consequence is computed by
    iterated fixpoint over the stratified program; the Gelfond–Lifschitz
    consistency condition is checked where needed, integrity constraints and
    choice-rule cardinality bounds are verified, and the weak-constraint
    cost is attached to each surviving model.

    The framework's generated encodings are stratified modulo choices, which
    keeps enumeration at [2^#choice-atoms]; fully non-stratified programs
    fall back to guessing over negated atoms as well. *)

exception Unsupported of string
(** The guess space is too large ([> max_guess] atoms) for exhaustive
    enumeration. *)

val solve : ?limit:int -> ?max_guess:int -> Ground.t -> Model.t list
(** All stable models (up to [limit], default unlimited), deduplicated,
    sorted by atom set; [#show] projections are {e not} applied — use
    {!Model.project} with [Ground.shows]. [max_guess] defaults to 24. *)

val solve_optimal : ?max_guess:int -> Ground.t -> Model.t list
(** Models with the minimal weak-constraint cost (all optima). *)

val satisfiable : ?max_guess:int -> Ground.t -> bool

val is_stable_model : Ground.t -> Model.AtomSet.t -> bool
(** Independent Gelfond–Lifschitz verification: [m] is the least model of
    the reduct of the program w.r.t. [m], and satisfies all integrity
    constraints and choice bounds. Used as a test oracle. *)
