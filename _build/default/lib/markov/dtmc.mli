(** Discrete-time Markov chains — the other classical EPA formalism the
    paper positions qualitative EPA against (§III.A: "Markov chains and
    Petri nets … require specific expert knowledge"). Provided as a
    quantitative baseline: the same qualitative models, annotated with
    per-step fault probabilities, yield failure probabilities. *)

type t

val make : states:string list -> transitions:(string * string * float) list -> t
(** Missing probability mass on a state becomes a self-loop; raises
    [Invalid_argument] on unknown states, probabilities outside [0,1],
    duplicate edges, or a row summing above 1 (+1e-9 tolerance). *)

val states : t -> string list
val probability : t -> string -> string -> float

val step : t -> (string * float) list -> (string * float) list
(** One transition of a distribution (missing states have mass 0). *)

val transient : t -> init:string -> steps:int -> (string * float) list
(** Distribution after [steps] transitions from [init], sorted by state. *)

val absorbing : t -> string list
(** States whose only outgoing mass is the self-loop. *)

val absorption_probability :
  ?epsilon:float -> ?max_iterations:int -> t -> init:string -> target:string -> float
(** Probability of eventually reaching the absorbing [target] from [init],
    by value iteration ([epsilon] defaults to 1e-12, [max_iterations] to
    100_000). Raises [Invalid_argument] when [target] is not absorbing. *)

val expected_steps_to :
  ?epsilon:float -> ?max_iterations:int -> t -> init:string -> target:string -> float
(** Expected number of steps to hit [target] from [init]; [infinity] when
    the target is reached with probability < 1. *)
