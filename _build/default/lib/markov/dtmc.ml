type t = {
  states : string array;
  index : (string, int) Hashtbl.t;
  (* row-major transition matrix; rows sum to 1 *)
  matrix : float array array;
}

let make ~states ~transitions =
  if states = [] then invalid_arg "Dtmc.make: no states";
  let n = List.length states in
  let index = Hashtbl.create n in
  List.iteri
    (fun i s ->
      if Hashtbl.mem index s then
        invalid_arg (Printf.sprintf "Dtmc.make: duplicate state %s" s);
      Hashtbl.replace index s i)
    states;
  let matrix = Array.make_matrix n n 0. in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, p) ->
      if p < 0. || p > 1. then
        invalid_arg
          (Printf.sprintf "Dtmc.make: probability %g of %s->%s outside [0,1]" p
             src dst);
      let i =
        match Hashtbl.find_opt index src with
        | Some i -> i
        | None -> invalid_arg (Printf.sprintf "Dtmc.make: unknown state %s" src)
      in
      let j =
        match Hashtbl.find_opt index dst with
        | Some j -> j
        | None -> invalid_arg (Printf.sprintf "Dtmc.make: unknown state %s" dst)
      in
      if Hashtbl.mem seen (i, j) then
        invalid_arg (Printf.sprintf "Dtmc.make: duplicate edge %s->%s" src dst);
      Hashtbl.replace seen (i, j) ();
      matrix.(i).(j) <- p)
    transitions;
  Array.iteri
    (fun i row ->
      let sum = Array.fold_left ( +. ) 0. row in
      if sum > 1. +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Dtmc.make: outgoing probability of %s sums to %g"
             (List.nth states i) sum);
      (* missing mass becomes a self-loop *)
      matrix.(i).(i) <- matrix.(i).(i) +. Float.max 0. (1. -. sum))
    matrix;
  { states = Array.of_list states; index; matrix }

let states t = Array.to_list t.states

let state_index t s =
  match Hashtbl.find_opt t.index s with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Dtmc: unknown state %s" s)

let probability t src dst = t.matrix.(state_index t src).(state_index t dst)

let n_states t = Array.length t.states

let vector_of_dist t dist =
  let v = Array.make (n_states t) 0. in
  List.iter (fun (s, p) -> v.(state_index t s) <- v.(state_index t s) +. p) dist;
  v

let dist_of_vector t v =
  Array.to_list (Array.mapi (fun i p -> (t.states.(i), p)) v)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let step_vector t v =
  let n = n_states t in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    if v.(i) > 0. then
      for j = 0 to n - 1 do
        out.(j) <- out.(j) +. (v.(i) *. t.matrix.(i).(j))
      done
  done;
  out

let step t dist = dist_of_vector t (step_vector t (vector_of_dist t dist))

let transient t ~init ~steps =
  let v = ref (vector_of_dist t [ (init, 1.) ]) in
  for _ = 1 to steps do
    v := step_vector t !v
  done;
  dist_of_vector t !v

let absorbing t =
  let n = n_states t in
  List.filter_map
    (fun i ->
      if t.matrix.(i).(i) >= 1. -. 1e-12 then Some t.states.(i) else None)
    (List.init n Fun.id)

let check_absorbing t target =
  if not (List.mem target (absorbing t)) then
    invalid_arg (Printf.sprintf "Dtmc: state %s is not absorbing" target)

(* value iteration on h(s) = P(eventually reach target from s) *)
let absorption_probability ?(epsilon = 1e-12) ?(max_iterations = 100_000) t
    ~init ~target =
  check_absorbing t target;
  let n = n_states t in
  let tgt = state_index t target in
  let h = Array.make n 0. in
  h.(tgt) <- 1.;
  let delta = ref 1. in
  let iterations = ref 0 in
  while !delta > epsilon && !iterations < max_iterations do
    incr iterations;
    delta := 0.;
    for i = 0 to n - 1 do
      if i <> tgt then begin
        let v = ref 0. in
        for j = 0 to n - 1 do
          v := !v +. (t.matrix.(i).(j) *. h.(j))
        done;
        delta := Float.max !delta (Float.abs (!v -. h.(i)));
        h.(i) <- !v
      end
    done
  done;
  h.(state_index t init)

let expected_steps_to ?(epsilon = 1e-12) ?(max_iterations = 100_000) t ~init
    ~target =
  let reach = absorption_probability ~epsilon ~max_iterations t ~init ~target in
  if reach < 1. -. 1e-6 then infinity
  else begin
    let n = n_states t in
    let tgt = state_index t target in
    let e = Array.make n 0. in
    let delta = ref 1. in
    let iterations = ref 0 in
    while !delta > epsilon && !iterations < max_iterations do
      incr iterations;
      delta := 0.;
      for i = 0 to n - 1 do
        if i <> tgt then begin
          let v = ref 1. in
          for j = 0 to n - 1 do
            v := !v +. (t.matrix.(i).(j) *. e.(j))
          done;
          delta := Float.max !delta (Float.abs (!v -. e.(i)));
          e.(i) <- !v
        end
      done
    done;
    e.(state_index t init)
  end
