lib/markov/dtmc.mli:
