lib/markov/dtmc.ml: Array Float Fun Hashtbl List Printf String
