lib/mitigation/action.ml: Format List String
