lib/mitigation/optimizer.ml: Action Format List Stdlib String
