lib/mitigation/action.mli: Format
