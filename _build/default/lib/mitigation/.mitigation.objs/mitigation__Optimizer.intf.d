lib/mitigation/optimizer.mli: Action Format
