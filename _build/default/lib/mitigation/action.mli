(** Mitigation actions (§IV.C): protective measures with a cost and the set
    of faults (or attacker-induced fault activations) they block. The case
    study's M1 (User Training) and M2 (Endpoint Security) both block F4. *)

type t = {
  id : string;
  name : string;
  cost : int;            (** implementation cost, abstract money units *)
  blocks : string list;  (** fault ids this measure prevents *)
}

val make : id:string -> name:string -> cost:int -> blocks:string list -> t

val blocks_relation : t list -> string -> string list
(** [blocks_relation actions] is the [blocks] function an
    {!Epa.Analysis.system} expects: mitigation id → blocked fault ids
    (empty for unknown ids). *)

val total_cost : t list -> string list -> int
(** Cost of a selection by ids; unknown ids cost 0. *)

val find : string -> t list -> t option
val pp : Format.formatter -> t -> unit
