type t = {
  id : string;
  name : string;
  cost : int;
  blocks : string list;
}

let make ~id ~name ~cost ~blocks =
  if cost < 0 then invalid_arg "Action.make: negative cost";
  { id; name; cost; blocks }

let find id actions = List.find_opt (fun a -> a.id = id) actions

let blocks_relation actions id =
  match find id actions with Some a -> a.blocks | None -> []

let total_cost actions ids =
  List.fold_left
    (fun acc id -> acc + match find id actions with Some a -> a.cost | None -> 0)
    0 ids

let pp ppf a =
  Format.fprintf ppf "%s (%s, cost %d, blocks {%s})" a.id a.name a.cost
    (String.concat "," a.blocks)
