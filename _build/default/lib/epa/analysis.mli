(** The EPA engine (Fig. 1 steps 2–4): exhaustive evaluation of the
    scenario space against the safety requirements.

    A {!system} packages the fault catalog, the mitigation blocking
    relation (Listing 1 semantics), a builder producing the qualitative
    dynamics for a given set of active faults, and the requirements. *)

type system = {
  catalog : Fault.t list;
  blocks : string -> string list;
      (** fault ids blocked by an active mitigation *)
  build : faults:string list -> Ltl.Ts.t;
      (** dynamics of the system under the given {e effective} faults *)
  requirements : Requirement.t list;
}

type row = {
  scenario : Scenario.t;
  effective : string list;  (** faults after blocking + induced closure *)
  verdicts : (string * Requirement.verdict) list;  (** per requirement id *)
}

val run_scenario : ?horizon:int -> system -> Scenario.t -> row

val run :
  ?horizon:int ->
  ?max_faults:int ->
  ?mitigations:string list ->
  system ->
  row list
(** Exhaustive sweep over the fault combinations (§IV.A), each combined
    with the given mitigation set. *)

val violations : row -> string list
(** Requirement ids violated in this row. *)

val hazardous : row list -> row list
(** Rows violating at least one requirement. *)

val most_severe : row list -> row list
(** Hazardous rows ranked: more violated requirements first, then {e fewer}
    simultaneous faults first — the paper's §VII argument that S5 (two
    faults) is more severe than S7 (three faults, same violations, lower
    simultaneous-occurrence probability). *)

val pp_row : Format.formatter -> row -> unit
