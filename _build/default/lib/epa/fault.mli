(** Fault modes of components (§IV.A step 2: "identify the different ways in
    which components can fail"), covering both accidental dependability
    faults and attacker-activated faults.

    A fault can {e induce} other faults: the paper's F4 (infected
    engineering workstation) induces F1, F2 and F3 — the attacker
    reconfigures both valves and suppresses the HMI signal. *)

type mode =
  | Stuck_at of string  (** output frozen at a value, e.g. valve stuck "open" *)
  | Omission            (** no output / no signal *)
  | Value_error         (** wrong value delivered *)
  | Timing_error        (** output delivered too late *)
  | Compromise          (** component under attacker control *)
  | Custom of string

type t = {
  id : string;           (** e.g. "F1" *)
  component : string;    (** model element id *)
  mode : mode;
  description : string;
  induces : string list; (** fault ids activated by this fault *)
}

val make :
  id:string -> component:string -> mode:mode -> ?description:string ->
  ?induces:string list -> unit -> t

val mode_to_string : mode -> string
val equal : t -> t -> bool

val close_induced : t list -> string list -> string list
(** [close_induced catalog active] adds transitively induced fault ids;
    result is sorted and duplicate-free. Unknown ids are kept as-is. *)

val find : string -> t list -> t option
val pp : Format.formatter -> t -> unit
