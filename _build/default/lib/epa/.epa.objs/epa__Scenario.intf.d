lib/epa/scenario.mli: Fault Format
