lib/epa/fault.mli: Format
