lib/epa/dynamics.mli: Ltl Qual Requirement
