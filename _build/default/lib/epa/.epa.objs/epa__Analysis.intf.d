lib/epa/analysis.mli: Fault Format Ltl Requirement Scenario
