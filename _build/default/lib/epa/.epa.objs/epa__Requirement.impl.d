lib/epa/requirement.ml: Format Ltl Printf
