lib/epa/requirement.mli: Format Ltl
