lib/epa/propagation.ml: Fault Format Hashtbl List Printf String
