lib/epa/dynamics.ml: Ltl Requirement
