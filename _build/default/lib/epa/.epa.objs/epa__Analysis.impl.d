lib/epa/analysis.ml: Fault Format List Ltl Printf Requirement Scenario Stdlib String
