lib/epa/fault.ml: Format List String
