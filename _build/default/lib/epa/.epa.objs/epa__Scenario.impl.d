lib/epa/scenario.ml: Array Fault Format List Option String
