lib/epa/propagation.mli: Fault Format
