type system = {
  catalog : Fault.t list;
  blocks : string -> string list;
  build : faults:string list -> Ltl.Ts.t;
  requirements : Requirement.t list;
}

type row = {
  scenario : Scenario.t;
  effective : string list;
  verdicts : (string * Requirement.verdict) list;
}

let run_scenario ?horizon sys scenario =
  let effective =
    Scenario.effective_faults ~catalog:sys.catalog ~blocks:sys.blocks scenario
  in
  let ts = sys.build ~faults:effective in
  let verdicts =
    List.map
      (fun (r : Requirement.t) -> (r.Requirement.id, Requirement.check ?horizon ts r))
      sys.requirements
  in
  { scenario; effective; verdicts }

let run ?horizon ?max_faults ?mitigations sys =
  Scenario.all_combinations ?max_faults ?mitigations sys.catalog
  |> List.map (run_scenario ?horizon sys)

let violations row =
  List.filter_map
    (fun (id, v) -> if Requirement.violated v then Some id else None)
    row.verdicts

let hazardous rows = List.filter (fun r -> violations r <> []) rows

let most_severe rows =
  hazardous rows
  |> List.stable_sort (fun a b ->
         let c =
           Stdlib.compare (List.length (violations b)) (List.length (violations a))
         in
         if c <> 0 then c
         else
           (* rank by the number of simultaneously activated root faults:
              fewer simultaneous activations = higher occurrence
              probability = more severe (the paper's S5 vs S7 argument) *)
           Stdlib.compare
             (List.length a.scenario.Scenario.faults)
             (List.length b.scenario.Scenario.faults))

let pp_row ppf row =
  let verdicts =
    row.verdicts
    |> List.map (fun (id, v) ->
           Printf.sprintf "%s=%s" id
             (if Requirement.violated v then "violated" else "-"))
    |> String.concat " "
  in
  Format.fprintf ppf "%s effective={%s} %s" (Scenario.label row.scenario)
    (String.concat "," row.effective)
    verdicts
