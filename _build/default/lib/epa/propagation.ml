type error_class = Omission_err | Value_err | Timing_err | Control_err

type behaviour = incoming:error_class list -> faults:Fault.mode list -> error_class list

let classes_of_fault = function
  | Fault.Stuck_at _ | Fault.Value_error -> [ Value_err ]
  | Fault.Omission -> [ Omission_err ]
  | Fault.Timing_error -> [ Timing_err ]
  | Fault.Compromise -> [ Control_err; Value_err; Omission_err ]
  | Fault.Custom _ -> [ Value_err ]

let default_behaviour ~incoming ~faults =
  List.sort_uniq compare (incoming @ List.concat_map classes_of_fault faults)

type component = { id : string; behaviour : behaviour }

type network = {
  components : component list;
  edges : (string * string) list;
}

let make_network ?(behaviours = []) ~components ~edges () =
  let known id = List.mem id components in
  List.iter
    (fun (s, t) ->
      if not (known s && known t) then
        invalid_arg
          (Printf.sprintf "Propagation.make_network: edge %s -> %s has unknown endpoint" s t))
    edges;
  List.iter
    (fun (id, _) ->
      if not (known id) then
        invalid_arg
          (Printf.sprintf "Propagation.make_network: behaviour for unknown component %s" id))
    behaviours;
  let comp id =
    {
      id;
      behaviour =
        (match List.assoc_opt id behaviours with
        | Some b -> b
        | None -> default_behaviour);
    }
  in
  { components = List.map comp components; edges }

type origin =
  | Local_fault of Fault.t
  | Propagated of string * error_class

type finding = {
  component : string;
  error : error_class;
  origin : origin;
}

type result = {
  table : (string * error_class, origin) Hashtbl.t;
  order : finding list; (* derivation order *)
}

let analyze net ~active =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  let faults_of c =
    List.filter (fun (f : Fault.t) -> f.Fault.component = c) active
  in
  let errors_of c =
    List.filter_map
      (fun ((comp, err), _) -> if comp = c then Some err else None)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  let add component error origin =
    if not (Hashtbl.mem table (component, error)) then begin
      Hashtbl.replace table (component, error) origin;
      order := { component; error; origin } :: !order;
      true
    end
    else false
  in
  (* seed with local faults *)
  List.iter
    (fun (c : component) ->
      List.iter
        (fun (f : Fault.t) ->
          List.iter
            (fun err -> ignore (add c.id err (Local_fault f)))
            (classes_of_fault f.Fault.mode))
        (faults_of c.id))
    net.components;
  (* fixpoint over transfer behaviours *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : component) ->
        (* incoming errors with their source components *)
        let incoming_with_src =
          List.concat_map
            (fun (s, t) ->
              if t = c.id then List.map (fun e -> (s, e)) (errors_of s) else [])
            net.edges
        in
        let incoming = List.sort_uniq compare (List.map snd incoming_with_src) in
        let fault_modes =
          List.map (fun (f : Fault.t) -> f.Fault.mode) (faults_of c.id)
        in
        let out = c.behaviour ~incoming ~faults:fault_modes in
        List.iter
          (fun err ->
            if not (Hashtbl.mem table (c.id, err)) then begin
              (* find a responsible origin: an incoming pair whose class is
                 err if the behaviour passed it through, else any incoming
                 pair (transformation), else a local fault *)
              let origin =
                match
                  List.find_opt (fun (_, e) -> e = err) incoming_with_src
                with
                | Some (src, e) -> Some (Propagated (src, e))
                | None -> (
                    match incoming_with_src with
                    | (src, e) :: _ -> Some (Propagated (src, e))
                    | [] -> (
                        match faults_of c.id with
                        | f :: _ -> Some (Local_fault f)
                        | [] -> None))
              in
              match origin with
              | Some o -> if add c.id err o then changed := true
              | None -> ()
            end)
          out)
      net.components
  done;
  { table; order = List.rev !order }

let errors_at c r =
  Hashtbl.fold
    (fun (comp, err) _ acc -> if comp = c then err :: acc else acc)
    r.table []
  |> List.sort_uniq compare

let findings r = r.order

let affected r =
  Hashtbl.fold (fun (comp, _) _ acc -> comp :: acc) r.table []
  |> List.sort_uniq String.compare

let path_to c err r =
  let rec go acc c err =
    match Hashtbl.find_opt r.table (c, err) with
    | None -> []
    | Some (Local_fault _) -> (c, err) :: acc
    | Some (Propagated (src, e)) ->
        if List.mem (src, e) acc then (c, err) :: acc (* cycle guard *)
        else go ((c, err) :: acc) src e
  in
  go [] c err

let error_class_to_string = function
  | Omission_err -> "omission"
  | Value_err -> "value"
  | Timing_err -> "timing"
  | Control_err -> "control"

let pp_finding ppf f =
  let origin =
    match f.origin with
    | Local_fault fault -> "local " ^ fault.Fault.id
    | Propagated (src, e) ->
        Printf.sprintf "from %s/%s" src (error_class_to_string e)
  in
  Format.fprintf ppf "%s/%s (%s)" f.component
    (error_class_to_string f.error)
    origin
