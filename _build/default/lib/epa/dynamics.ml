type t = Ltl.Ts.t

let make ~init ~step = Ltl.Ts.make ~init:[ init ] ~next:(fun s -> [ step s ])
let make_nondet ~init ~step = Ltl.Ts.make ~init ~next:step
let to_ts t = t

let run ?horizon t =
  match Ltl.Ts.init t with
  | [] -> invalid_arg "Dynamics.run: no initial state"
  | st :: _ -> Ltl.Ts.run ?horizon t st

let check ?horizon t r = Requirement.check ?horizon t r
