type t = {
  faults : string list;
  mitigations : string list;
}

let make ?(mitigations = []) faults =
  {
    faults = List.sort_uniq String.compare faults;
    mitigations = List.sort_uniq String.compare mitigations;
  }

let subsets_by_size xs max_size =
  let n = List.length xs in
  let xs = Array.of_list xs in
  let out = ref [] in
  (* enumerate subsets of a given size in lexicographic index order *)
  let rec choose start size acc =
    if size = 0 then out := List.rev acc :: !out
    else
      for i = start to n - size do
        choose (i + 1) (size - 1) (xs.(i) :: acc)
      done
  in
  for size = 0 to min n max_size do
    choose 0 size []
  done;
  List.rev !out

let all_combinations ?max_faults ?(mitigations = []) catalog =
  let ids = List.map (fun (f : Fault.t) -> f.Fault.id) catalog in
  let max_size = Option.value ~default:(List.length ids) max_faults in
  List.map (fun faults -> make ~mitigations faults) (subsets_by_size ids max_size)

let effective_faults ~catalog ~blocks s =
  let blocked =
    List.concat_map blocks s.mitigations |> List.sort_uniq String.compare
  in
  let potential = List.filter (fun f -> not (List.mem f blocked)) s.faults in
  (* induced faults of an unblocked fault are themselves subject to
     blocking: close first, then filter, then re-close over survivors *)
  let closed = Fault.close_induced catalog potential in
  List.filter (fun f -> not (List.mem f blocked)) closed

let label s =
  let set xs = "{" ^ String.concat "," xs ^ "}" in
  match s.mitigations with
  | [] -> set s.faults
  | ms -> set s.faults ^ "+" ^ set ms

let equal a b = a = b
let pp ppf s = Format.pp_print_string ppf (label s)
