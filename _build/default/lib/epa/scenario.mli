(** Attack/fault scenarios: the "scenario space" of §IV.A — combinations of
    fault-mode activations, optionally under a set of active mitigations. *)

type t = {
  faults : string list;      (** activated fault ids, sorted *)
  mitigations : string list; (** active mitigation ids, sorted *)
}

val make : ?mitigations:string list -> string list -> t

val all_combinations :
  ?max_faults:int -> ?mitigations:string list -> Fault.t list -> t list
(** Every subset of the fault catalog (up to [max_faults] simultaneous
    activations if given), each paired with the same mitigation set. The
    empty scenario comes first; subsets are enumerated in size-then-lex
    order, matching the paper's Table II layout. *)

val effective_faults :
  catalog:Fault.t list ->
  blocks:(string -> string list) ->
  t ->
  string list
(** Faults that actually activate: the paper's Listing 1 semantics — a fault
    is only {e potential} when no active mitigation blocks it — followed by
    closure over induced faults. [blocks m] lists the fault ids blocked by
    mitigation [m]. *)

val label : t -> string
(** ["{F1,F3}+{M1}"]-style label. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
