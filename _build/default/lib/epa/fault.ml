type mode =
  | Stuck_at of string
  | Omission
  | Value_error
  | Timing_error
  | Compromise
  | Custom of string

type t = {
  id : string;
  component : string;
  mode : mode;
  description : string;
  induces : string list;
}

let make ~id ~component ~mode ?(description = "") ?(induces = []) () =
  { id; component; mode; description; induces }

let mode_to_string = function
  | Stuck_at v -> "stuck_at_" ^ v
  | Omission -> "omission"
  | Value_error -> "value_error"
  | Timing_error -> "timing_error"
  | Compromise -> "compromise"
  | Custom s -> s

let equal a b = a = b
let find id faults = List.find_opt (fun f -> f.id = id) faults

let close_induced catalog active =
  let rec go seen = function
    | [] -> seen
    | id :: rest ->
        if List.mem id seen then go seen rest
        else
          let induced =
            match find id catalog with Some f -> f.induces | None -> []
          in
          go (id :: seen) (induced @ rest)
  in
  List.sort_uniq String.compare (go [] active)

let pp ppf f =
  Format.fprintf ppf "%s: %s/%s" f.id f.component (mode_to_string f.mode)
