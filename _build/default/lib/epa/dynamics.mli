(** Discrete-time qualitative dynamics ("detailed propagation analysis",
    §VI item 2): component behaviour modeled as a step function over the
    qualitative state, simulated exhaustively as a transition system. *)

type t

val make : init:Qual.Qstate.t -> step:(Qual.Qstate.t -> Qual.Qstate.t) -> t
(** Deterministic dynamics. *)

val make_nondet :
  init:Qual.Qstate.t list -> step:(Qual.Qstate.t -> Qual.Qstate.t list) -> t

val to_ts : t -> Ltl.Ts.t
val run : ?horizon:int -> t -> Ltl.Trace.t
(** Deterministic trace from the (first) initial state, ending at horizon,
    deadlock or first repeated state. *)

val check : ?horizon:int -> t -> Requirement.t -> Requirement.verdict
