(** Static (topology-based) qualitative error propagation — the paper's
    "topology-based propagation" evaluation focus (§VI item 1): when
    component behaviour is not yet modeled, errors propagate along the
    information-flow edges through qualitative transfer behaviours.

    The analysis computes, by fixpoint, which error classes each component
    can exhibit given a set of active fault modes, and records provenance so
    that every derived error can be explained by a propagation path back to
    an originating fault ("gives the components' error propagation path and
    active fault modes", §II.C). *)

type error_class =
  | Omission_err   (** missing service/signal *)
  | Value_err      (** wrong value *)
  | Timing_err     (** late service *)
  | Control_err    (** wrong control action / attacker-controlled behaviour *)

type behaviour = incoming:error_class list -> faults:Fault.mode list -> error_class list
(** Qualitative transfer function of one component: which error classes it
    emits given incoming error classes and its own active fault modes. *)

val default_behaviour : behaviour
(** Pass-through: propagates every incoming error class and translates local
    fault modes into classes (stuck-at/value → value, omission → omission,
    timing → timing, compromise → control + value + omission). *)

type component = { id : string; behaviour : behaviour }

type network = {
  components : component list;
  edges : (string * string) list;  (** directed flow edges (source, target) *)
}

val make_network :
  ?behaviours:(string * behaviour) list ->
  components:string list ->
  edges:(string * string) list ->
  unit ->
  network
(** Components not listed in [behaviours] get {!default_behaviour}. Raises
    [Invalid_argument] on edges touching unknown components. *)

type origin =
  | Local_fault of Fault.t
  | Propagated of string * error_class  (** from upstream component *)

type finding = {
  component : string;
  error : error_class;
  origin : origin;
}

type result

val analyze : network -> active:Fault.t list -> result

val errors_at : string -> result -> error_class list
val findings : result -> finding list
val affected : result -> string list
(** Components with at least one error class, sorted. *)

val path_to : string -> error_class -> result -> (string * error_class) list
(** A propagation path [(component, error) … ] from an originating fault to
    the requested pair; [\[\]] if the pair was not derived. The head of the
    list is the origin. *)

val error_class_to_string : error_class -> string
val pp_finding : Format.formatter -> finding -> unit
