(** Attack-graph generation over the typed system model — the capability
    the paper's related work (§III.B, threat modeling with the ATT&CK
    matrix) provides, integrated with this framework's model and threat
    snapshots.

    Nodes pair a model component with an applicable ATT&CK-ICS technique;
    an edge leads from one node to another when the adversary can progress:
    the target's earliest tactic stage is strictly later in the kill chain
    and the components are adjacent in the model (same element; a
    flow/serving/access relationship; or composition in either direction —
    code running in a part runs in the whole). *)

type node = {
  component : string;  (** model element id *)
  technique : Threatdb.Attck.technique;
}

type t

val generate : Archimate.Model.t -> t
(** Techniques are drawn from {!Threatdb.Db.threats_for_type} via each
    element's ["component_type"] property; untyped elements get no nodes. *)

val nodes : t -> node list
val edges : t -> (node * node) list
val size : t -> int * int
(** (node count, edge count). *)

val entry_nodes : t -> node list
(** Nodes whose technique includes the initial-access tactic. *)

val goal_nodes : t -> node list
(** Nodes with an impact or impair-process-control tactic. *)

val stage : Threatdb.Attck.technique -> int
(** Earliest kill-chain position of the technique's tactics (0 = initial
    access … 11 = impact). *)

val paths : ?max_length:int -> t -> source:node -> sink:node -> node list list
(** Simple paths (no repeated node) from [source] to [sink], bounded by
    [max_length] nodes (default 8), in DFS order. *)

val attack_scenarios : ?max_length:int -> t -> node list list
(** All entry→goal paths: the graph view of the paper's "attack scenario
    space" (§IV.A). *)

val severity : node list -> Qual.Level.t
(** Severity of a scenario path: the maximum severity of its techniques
    per {!Threatdb.Db.threats_for_type} (Very_low for the empty path). *)

val node_equal : node -> node -> bool
val pp_node : Format.formatter -> node -> unit
val to_dot : t -> string
(** Graphviz rendering for documentation. *)
