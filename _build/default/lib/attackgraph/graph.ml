type node = {
  component : string;
  technique : Threatdb.Attck.technique;
}

type t = {
  nodes : node list;
  edges : (node * node) list;
  severities : (string * string, Qual.Level.t) Hashtbl.t;
      (* (component, technique id) -> severity *)
}

let tactic_stage = function
  | Threatdb.Attck.Initial_access -> 0
  | Threatdb.Attck.Execution -> 1
  | Threatdb.Attck.Persistence -> 2
  | Threatdb.Attck.Privilege_escalation -> 3
  | Threatdb.Attck.Evasion -> 4
  | Threatdb.Attck.Discovery -> 5
  | Threatdb.Attck.Lateral_movement -> 6
  | Threatdb.Attck.Collection -> 7
  | Threatdb.Attck.Command_and_control -> 8
  | Threatdb.Attck.Inhibit_response -> 9
  | Threatdb.Attck.Impair_process_control -> 10
  | Threatdb.Attck.Impact -> 11

let stage (t : Threatdb.Attck.technique) =
  List.fold_left
    (fun acc tac -> min acc (tactic_stage tac))
    max_int t.Threatdb.Attck.tactics

let node_equal a b =
  a.component = b.component
  && a.technique.Threatdb.Attck.id = b.technique.Threatdb.Attck.id

(* components adjacent for adversary progression *)
let adjacent model c1 c2 =
  c1 = c2
  || List.exists
       (fun (r : Archimate.Relationship.t) ->
         let connects src dst = r.Archimate.Relationship.source = src && r.Archimate.Relationship.target = dst in
         match r.Archimate.Relationship.kind with
         | Archimate.Relationship.Flow | Archimate.Relationship.Serving
         | Archimate.Relationship.Access _ ->
             connects c1 c2
         | Archimate.Relationship.Composition | Archimate.Relationship.Aggregation ->
             connects c1 c2 || connects c2 c1
         | Archimate.Relationship.Assignment | Archimate.Relationship.Realization
         | Archimate.Relationship.Triggering | Archimate.Relationship.Association
         | Archimate.Relationship.Specialization ->
             false)
       (Archimate.Model.relationships model)

let generate model =
  let severities = Hashtbl.create 64 in
  let nodes =
    List.concat_map
      (fun (e : Archimate.Element.t) ->
        match Archimate.Element.property "component_type" e with
        | None -> []
        | Some ty ->
            List.map
              (fun (threat : Threatdb.Db.threat) ->
                let node =
                  {
                    component = e.Archimate.Element.id;
                    technique = threat.Threatdb.Db.technique;
                  }
                in
                Hashtbl.replace severities
                  ( node.component,
                    node.technique.Threatdb.Attck.id )
                  threat.Threatdb.Db.severity;
                node)
              (Threatdb.Db.threats_for_type ty))
      (Archimate.Model.elements model)
  in
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              (not (node_equal a b))
              && stage a.technique < stage b.technique
              && adjacent model a.component b.component
            then Some (a, b)
            else None)
          nodes)
      nodes
  in
  { nodes; edges; severities }

let nodes g = g.nodes
let edges g = g.edges
let size g = (List.length g.nodes, List.length g.edges)

let entry_nodes g =
  List.filter
    (fun n ->
      List.mem Threatdb.Attck.Initial_access n.technique.Threatdb.Attck.tactics)
    g.nodes

let goal_nodes g =
  List.filter
    (fun n ->
      List.exists
        (fun tac ->
          tac = Threatdb.Attck.Impact || tac = Threatdb.Attck.Impair_process_control)
        n.technique.Threatdb.Attck.tactics)
    g.nodes

let successors g n =
  List.filter_map
    (fun (a, b) -> if node_equal a n then Some b else None)
    g.edges

let paths ?(max_length = 8) g ~source ~sink =
  let out = ref [] in
  let rec go path n =
    let path = n :: path in
    if node_equal n sink then out := List.rev path :: !out
    else if List.length path < max_length then
      List.iter
        (fun succ ->
          if not (List.exists (node_equal succ) path) then go path succ)
        (successors g n)
  in
  go [] source;
  List.rev !out

let attack_scenarios ?max_length g =
  let goals = goal_nodes g in
  List.concat_map
    (fun source ->
      List.concat_map (fun sink -> paths ?max_length g ~source ~sink) goals)
    (entry_nodes g)

let severity_of g n =
  match Hashtbl.find_opt g.severities (n.component, n.technique.Threatdb.Attck.id) with
  | Some s -> s
  | None -> Qual.Level.Medium

let severity path =
  List.fold_left
    (fun acc (n : node) ->
      Qual.Level.max acc (Threatdb.Db.technique_severity n.technique))
    Qual.Level.Very_low path

let pp_node ppf n =
  Format.fprintf ppf "%s@%s" n.technique.Threatdb.Attck.id n.component

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph attack {\n  rankdir=LR;\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s@%s\" [label=\"%s\\n%s\\n(%s)\"];\n"
           n.technique.Threatdb.Attck.id n.component
           n.technique.Threatdb.Attck.id n.technique.Threatdb.Attck.name
           n.component))
    g.nodes;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s@%s\" -> \"%s@%s\";\n"
           a.technique.Threatdb.Attck.id a.component
           b.technique.Threatdb.Attck.id b.component))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let _ = severity_of
