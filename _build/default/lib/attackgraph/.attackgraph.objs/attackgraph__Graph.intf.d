lib/attackgraph/graph.mli: Archimate Format Qual Threatdb
