lib/attackgraph/graph.ml: Archimate Buffer Format Hashtbl List Printf Qual Threatdb
