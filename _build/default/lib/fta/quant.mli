(** Quantitative fault-tree evaluation ("enriching the model … facilitates
    a rough-granular risk analysis", Fig. 1 step 6): top-event probability
    under independent basic events, plus importance measures.

    Exact by exhaustive enumeration over the basic events — the trees this
    framework produces have a handful of fault modes, so 2^n enumeration is
    both exact and cheap (guarded at 20 events). *)

val top_event_probability : Tree.t -> (string -> float) -> float
(** [top_event_probability t p] with [p e] the activation probability of
    basic event [e]. Raises [Invalid_argument] when a probability is
    outside [0, 1] or the tree has more than 20 basic events. *)

val scenario_probability : all:string list -> (string -> float) -> string list -> float
(** Probability that {e exactly} the given subset of [all] events is active
    (the paper's §VII occurrence-probability comparison of S5 vs S7). *)

val birnbaum_importance : Tree.t -> (string -> float) -> (string * float) list
(** Birnbaum structural importance per basic event:
    [P(top | e active) − P(top | e inactive)] — which fault most deserves a
    mitigation. Sorted by importance, largest first. *)

val fussell_vesely : Tree.t -> (string -> float) -> (string * float) list
(** Fussell–Vesely importance: the fraction of the top-event probability
    contributed by cut sets containing the event, approximated by
    [1 − P(top with e inactive)/P(top)]; 0 when the top event is
    impossible. Sorted largest first. *)
