let check_probability e p =
  if p < 0. || p > 1. then
    invalid_arg
      (Printf.sprintf "Fta.Quant: probability %g of event %s outside [0,1]" p e)

let top_event_probability t p =
  let events = Tree.basic_events t in
  let n = List.length events in
  if n > 20 then
    invalid_arg
      (Printf.sprintf "Fta.Quant: %d basic events exceed the enumeration bound" n);
  List.iter (fun e -> check_probability e (p e)) events;
  let events = Array.of_list events in
  let total = ref 0. in
  (* enumerate all event subsets by bitmask; weight = product of marginals *)
  for mask = 0 to (1 lsl n) - 1 do
    let weight = ref 1. in
    for i = 0 to n - 1 do
      let pe = p events.(i) in
      weight := !weight *. if mask land (1 lsl i) <> 0 then pe else 1. -. pe
    done;
    if !weight > 0. then begin
      let active e =
        let rec find i = events.(i) = e || find (i + 1) in
        let rec idx i = if events.(i) = e then i else idx (i + 1) in
        ignore find;
        mask land (1 lsl idx 0) <> 0
      in
      if Tree.eval active t then total := !total +. !weight
    end
  done;
  !total

let scenario_probability ~all p subset =
  List.iter (fun e -> check_probability e (p e)) all;
  List.fold_left
    (fun acc e ->
      acc *. if List.mem e subset then p e else 1. -. p e)
    1. all

let conditioned p event value e = if e = event then value else p e

let birnbaum_importance t p =
  Tree.basic_events t
  |> List.map (fun e ->
         let with_e = top_event_probability t (conditioned p e 1.) in
         let without_e = top_event_probability t (conditioned p e 0.) in
         (e, with_e -. without_e))
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b a)

let fussell_vesely t p =
  let top = top_event_probability t p in
  Tree.basic_events t
  |> List.map (fun e ->
         if top = 0. then (e, 0.)
         else
           let without_e = top_event_probability t (conditioned p e 0.) in
           (e, 1. -. (without_e /. top)))
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b a)
