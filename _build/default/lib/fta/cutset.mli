(** Minimal cut sets: the smallest basic-event combinations that trigger the
    top event — computed by MOCUS-style top-down expansion followed by
    absorption. *)

val minimal_cut_sets : Tree.t -> string list list
(** Each cut set sorted; the list ordered by cardinality, then
    lexicographically. *)

val is_cut_set : Tree.t -> string list -> bool
(** The given events (and nothing else) trigger the top event. *)

val order : string list list -> int
(** Cardinality of the smallest cut set; [max_int] for an empty list. *)

val single_points_of_failure : Tree.t -> string list
(** Basic events forming order-1 cut sets. *)
