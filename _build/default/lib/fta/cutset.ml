(* Represent the DNF as a list of sorted event lists; expand gates
   top-down (MOCUS) and absorb supersets at the end. *)

let product a b =
  List.concat_map
    (fun ca -> List.map (fun cb -> List.sort_uniq String.compare (ca @ cb)) b)
    a

let rec combinations k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest)
        @ combinations k rest

let rec dnf = function
  | Tree.Basic e -> [ [ e ] ]
  | Tree.Or ts -> List.concat_map dnf ts
  | Tree.And ts ->
      List.fold_left (fun acc t -> product acc (dnf t)) [ [] ] ts
  | Tree.K_of_n (k, ts) ->
      if k <= 0 then [ [] ]
      else if k > List.length ts then []
      else dnf (Tree.Or (List.map (fun c -> Tree.And c) (combinations k ts)))

let subset a b = List.for_all (fun x -> List.mem x b) a

let absorb cuts =
  let cuts = List.sort_uniq compare cuts in
  List.filter
    (fun c ->
      not (List.exists (fun c' -> c' <> c && subset c' c) cuts))
    cuts

let minimal_cut_sets t =
  absorb (dnf t)
  |> List.sort (fun a b ->
         let c = Stdlib.compare (List.length a) (List.length b) in
         if c <> 0 then c else Stdlib.compare a b)

let is_cut_set t events = Tree.eval (fun e -> List.mem e events) t

let order = function
  | [] -> max_int
  | cuts -> List.fold_left (fun acc c -> min acc (List.length c)) max_int cuts

let single_points_of_failure t =
  minimal_cut_sets t
  |> List.filter_map (function [ e ] -> Some e | _ -> None)
