(** Classic fault trees — the baseline EPA method the paper contrasts with
    qualitative EPA (§III.A): top-down combination of basic events through
    AND/OR/k-of-n gates. *)

type t =
  | Basic of string
  | And of t list
  | Or of t list
  | K_of_n of int * t list  (** at least k of the subtrees *)

val basic_events : t -> string list
(** Distinct, in first-occurrence order. *)

val eval : (string -> bool) -> t -> bool
(** Truth of the top event under a basic-event assignment. *)

val size : t -> int
val depth : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
