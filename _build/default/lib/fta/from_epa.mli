(** Bridges between qualitative EPA and fault trees (§III.A: "qualitative
    error propagation analysis can be incorporated into the FTA process to
    achieve a more comprehensive and accurate result"). *)

val of_analysis : requirement:string -> Epa.Analysis.row list -> Tree.t
(** Exact fault tree of one requirement from the exhaustive EPA sweep: an
    OR over the minimal violating fault combinations (scenario root
    faults). [Or []] — an unreachable top event — when nothing violates. *)

val structural :
  topology:Epa.Propagation.network ->
  asset:string ->
  faults:Epa.Fault.t list ->
  Tree.t
(** The naive structural fault tree an analyst would draw from topology
    alone: the asset's top event fires whenever {e any} catalog fault can
    reach it along flow edges — ignoring behaviour and interactions. This
    is the §III.A strawman: compared against {!of_analysis} it
    over-approximates, flagging compensated faults as cut sets. *)

type comparison = {
  spurious : string list list;
      (** structural cut sets with no exact cut set inside them: the
          false alarms behaviour-aware EPA eliminates *)
  escaped : string list list;
      (** exact cut sets not covered by any structural cut set: hazards the
          naive tree would miss entirely *)
}

val compare_cut_sets :
  exact:string list list -> structural:string list list -> comparison

val agree : comparison -> bool
