lib/fta/from_epa.mli: Epa Tree
