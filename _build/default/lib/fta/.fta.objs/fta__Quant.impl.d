lib/fta/quant.ml: Array Float List Printf Tree
