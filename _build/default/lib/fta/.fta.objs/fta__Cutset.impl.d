lib/fta/cutset.ml: List Stdlib String Tree
