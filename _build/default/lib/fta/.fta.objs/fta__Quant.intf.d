lib/fta/quant.mli: Tree
