lib/fta/tree.ml: Format List Printf String
