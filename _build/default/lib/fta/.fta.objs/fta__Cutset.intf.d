lib/fta/cutset.mli: Tree
