lib/fta/tree.mli: Format
