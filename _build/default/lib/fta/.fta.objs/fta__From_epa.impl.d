lib/fta/from_epa.ml: Epa Hashtbl List Tree
