type t =
  | Basic of string
  | And of t list
  | Or of t list
  | K_of_n of int * t list

let basic_events t =
  let add acc e = if List.mem e acc then acc else e :: acc in
  let rec go acc = function
    | Basic e -> add acc e
    | And ts | Or ts | K_of_n (_, ts) -> List.fold_left go acc ts
  in
  List.rev (go [] t)

let rec eval v = function
  | Basic e -> v e
  | And ts -> List.for_all (eval v) ts
  | Or ts -> List.exists (eval v) ts
  | K_of_n (k, ts) ->
      List.length (List.filter (eval v) ts) >= k

let rec size = function
  | Basic _ -> 1
  | And ts | Or ts | K_of_n (_, ts) ->
      1 + List.fold_left (fun acc t -> acc + size t) 0 ts

let rec depth = function
  | Basic _ -> 1
  | And ts | Or ts | K_of_n (_, ts) ->
      1 + List.fold_left (fun acc t -> max acc (depth t)) 0 ts

let rec to_string = function
  | Basic e -> e
  | And ts -> "AND(" ^ String.concat ", " (List.map to_string ts) ^ ")"
  | Or ts -> "OR(" ^ String.concat ", " (List.map to_string ts) ^ ")"
  | K_of_n (k, ts) ->
      Printf.sprintf "%d-of-%d(%s)" k (List.length ts)
        (String.concat ", " (List.map to_string ts))

let pp ppf t = Format.pp_print_string ppf (to_string t)
