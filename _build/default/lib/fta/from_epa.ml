let subset a b = List.for_all (fun x -> List.mem x b) a

let of_analysis ~requirement rows =
  let violating =
    List.filter_map
      (fun (row : Epa.Analysis.row) ->
        if List.mem requirement (Epa.Analysis.violations row) then
          Some row.Epa.Analysis.scenario.Epa.Scenario.faults
        else None)
      rows
  in
  (* keep only the minimal violating combinations *)
  let minimal =
    List.filter
      (fun c -> not (List.exists (fun c' -> c' <> c && subset c' c) violating))
      violating
    |> List.sort_uniq compare
  in
  Tree.Or (List.map (fun c -> Tree.And (List.map (fun f -> Tree.Basic f) c)) minimal)

let structural ~topology ~asset ~faults =
  (* a fault is assumed hazardous when an error from its component can reach
     the asset along flow edges (or it sits on the asset itself) *)
  let reaches src =
    if src = asset then true
    else begin
      let seen = Hashtbl.create 16 in
      let rec go c =
        if c = asset then true
        else if Hashtbl.mem seen c then false
        else begin
          Hashtbl.replace seen c ();
          List.exists
            (fun (s, t) -> s = c && go t)
            topology.Epa.Propagation.edges
        end
      in
      go src
    end
  in
  let contributing =
    List.filter (fun (f : Epa.Fault.t) -> reaches f.Epa.Fault.component) faults
  in
  Tree.Or (List.map (fun (f : Epa.Fault.t) -> Tree.Basic f.Epa.Fault.id) contributing)

type comparison = {
  spurious : string list list;
  escaped : string list list;
}

let compare_cut_sets ~exact ~structural =
  let covered_by base c = List.exists (fun c' -> subset c' c) base in
  {
    spurious = List.filter (fun c -> not (covered_by exact c)) structural;
    escaped = List.filter (fun c -> not (covered_by structural c)) exact;
  }

let agree c = c.spurious = [] && c.escaped = []
