type t = {
  id : int;
  name : string;
  description : string;
  parent : int option;
  applicable_types : string list;
}

let mk id name description parent applicable_types =
  { id; name; description; parent; applicable_types }

let all =
  [
    mk 284 "Improper Access Control"
      "The product does not restrict or incorrectly restricts access to a \
       resource from an unauthorized actor."
      None
      [ "plc"; "hmi"; "scada_server"; "server"; "workstation"; "controller" ];
    mk 287 "Improper Authentication"
      "An actor claims to have a given identity, but the product does not \
       prove or insufficiently proves that the claim is correct."
      (Some 284)
      [ "hmi"; "scada_server"; "server"; "workstation"; "historian" ];
    mk 306 "Missing Authentication for Critical Function"
      "The product does not perform any authentication for functionality \
       that requires a provable user identity."
      (Some 287)
      [ "plc"; "controller"; "hmi" ];
    mk 20 "Improper Input Validation"
      "The product receives input but does not validate that it has the \
       properties required to process it safely."
      None
      [ "plc"; "controller"; "server"; "historian"; "scada_server" ];
    mk 787 "Out-of-bounds Write"
      "The product writes data past the end, or before the beginning, of \
       the intended buffer."
      (Some 20)
      [ "plc"; "server"; "workstation" ];
    mk 94 "Improper Control of Generation of Code ('Code Injection')"
      "The product constructs all or part of a code segment using \
       externally-influenced input without neutralizing special elements."
      (Some 20)
      [ "server"; "workstation"; "browser" ];
    mk 352 "Cross-Site Request Forgery (CSRF)"
      "The web application does not sufficiently verify whether a request \
       was intentionally provided by the user who submitted it."
      None [ "browser"; "hmi" ];
    mk 522 "Insufficiently Protected Credentials"
      "The product transmits or stores authentication credentials using an \
       insecure method."
      None
      [ "workstation"; "server"; "email_client"; "historian" ];
    mk 829 "Inclusion of Functionality from Untrusted Control Sphere"
      "The product imports executable functionality from a source outside \
       of the intended control sphere."
      None
      [ "browser"; "email_client"; "workstation" ];
    mk 1188 "Initialization of a Resource with an Insecure Default"
      "The product initializes a resource with a default that is intended \
       to be changed but is insecure when left in place."
      None
      [ "plc"; "firewall"; "switch"; "ot_network" ];
    mk 400 "Uncontrolled Resource Consumption"
      "The product does not properly control the consumption of limited \
       resources, enabling denial of service."
      None
      [ "switch"; "ot_network"; "server"; "scada_server" ];
    mk 494 "Download of Code Without Integrity Check"
      "The product downloads code and executes it without verifying its \
       origin and integrity."
      (Some 829)
      [ "browser"; "workstation" ];
  ]

let find id = List.find_opt (fun w -> w.id = id) all
let key w = Printf.sprintf "CWE-%d" w.id

let for_component_type ty =
  List.filter (fun w -> List.mem ty w.applicable_types) all

let ancestors w =
  let rec go acc = function
    | None -> List.rev acc
    | Some id -> (
        match find id with
        | None -> List.rev acc
        | Some p -> go (p :: acc) p.parent)
  in
  go [] w.parent

let pp ppf w = Format.fprintf ppf "%s %s" (key w) w.name
