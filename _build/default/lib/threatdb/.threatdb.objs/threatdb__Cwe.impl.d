lib/threatdb/cwe.ml: Format List Printf
