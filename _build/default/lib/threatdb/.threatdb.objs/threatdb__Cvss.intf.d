lib/threatdb/cvss.mli: Qual
