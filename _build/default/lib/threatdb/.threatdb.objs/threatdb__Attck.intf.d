lib/threatdb/attck.mli: Format Qual
