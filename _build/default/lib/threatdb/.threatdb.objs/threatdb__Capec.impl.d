lib/threatdb/capec.ml: Format List Printf Qual
