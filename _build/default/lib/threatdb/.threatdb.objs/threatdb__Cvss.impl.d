lib/threatdb/cvss.ml: Float Hashtbl List Option Printf Qual Result String
