lib/threatdb/db.ml: Asp Attck Capec Cve Cwe List Printf Qual String
