lib/threatdb/cwe.mli: Format
