lib/threatdb/cve.mli: Cvss Format Qual
