lib/threatdb/db.mli: Asp Attck Capec Cve Cwe Qual
