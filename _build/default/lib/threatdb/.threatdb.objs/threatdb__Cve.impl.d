lib/threatdb/cve.ml: Cvss Format List
