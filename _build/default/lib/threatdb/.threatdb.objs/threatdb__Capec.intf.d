lib/threatdb/capec.mli: Format Qual
