lib/threatdb/attck.ml: Format List Qual
