(** Offline snapshot of CAPEC attack patterns (curated, schema-faithful).
    The spam-link → malware chain of the paper's case study (§VII) is
    covered by CAPEC-98 / CAPEC-163 / CAPEC-542. *)

type t = {
  id : int;
  name : string;
  description : string;
  severity : Qual.Level.t;
  likelihood : Qual.Level.t;
  related_cwes : int list;
}

val all : t list
val find : int -> t option
val key : t -> string
(** ["CAPEC-98"]. *)

val for_cwe : int -> t list
(** Patterns exploiting the given weakness. *)

val pp : Format.formatter -> t -> unit
