type t = {
  id : string;
  description : string;
  vector : Cvss.base;
  cwes : int list;
  techniques : string list;
  applicable_types : string list;
}

let vec s =
  match Cvss.of_vector s with
  | Ok b -> b
  | Error e -> invalid_arg ("Cve: bad seed vector " ^ s ^ ": " ^ e)

let mk id description vector cwes techniques applicable_types =
  { id; description; vector = vec vector; cwes; techniques; applicable_types }

let all =
  [
    mk "CVE-SIM-2023-0101"
      "Unauthenticated remote code execution in the engineering \
       workstation's project-file service."
      "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
      [ 787; 20 ] [ "T0866" ] [ "workstation" ];
    mk "CVE-SIM-2023-0102"
      "Malicious e-mail link leads to drive-by download executing \
       arbitrary code in the browser sandbox."
      "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H"
      [ 829; 494 ] [ "T0865"; "T0853" ] [ "browser"; "email_client" ];
    mk "CVE-SIM-2022-0201"
      "Missing authentication on the PLC program-download port allows \
       logic modification from the control network."
      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:H"
      [ 306 ] [ "T0843"; "T0831" ] [ "plc"; "controller" ];
    mk "CVE-SIM-2022-0202"
      "HMI panel discloses and accepts session tokens over an unencrypted \
       channel."
      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:L/A:N"
      [ 522; 287 ] [ "T0859"; "T0829" ] [ "hmi" ];
    mk "CVE-SIM-2021-0301"
      "SCADA historian SQL injection allows reading and modifying archived \
       process data."
      "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:N"
      [ 94; 20 ] [ "T0866" ] [ "historian"; "scada_server" ];
    mk "CVE-SIM-2021-0302"
      "Resource exhaustion in the OT switch firmware drops control traffic \
       under crafted packet floods."
      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"
      [ 400 ] [ "T0814" ] [ "switch"; "ot_network" ];
    mk "CVE-SIM-2020-0401"
      "Firewall management interface ships with documented default \
       credentials."
      "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"
      [ 1188; 287 ] [ "T0859" ] [ "firewall" ];
    mk "CVE-SIM-2020-0402"
      "Local privilege escalation in workstation agent service via \
       unquoted service path."
      "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"
      [ 284 ] [ "T0859" ] [ "workstation"; "server" ];
  ]

let find id = List.find_opt (fun c -> c.id = id) all

let for_component_type ty =
  List.filter (fun c -> List.mem ty c.applicable_types) all

let score c = Cvss.base_score c.vector
let severity_level c = Cvss.severity_to_level (Cvss.severity (score c))

let pp ppf c =
  Format.fprintf ppf "%s (%.1f %s)" c.id (score c)
    (Cvss.severity_to_string (Cvss.severity (score c)))
