type tactic =
  | Initial_access
  | Execution
  | Persistence
  | Privilege_escalation
  | Evasion
  | Discovery
  | Lateral_movement
  | Collection
  | Command_and_control
  | Inhibit_response
  | Impair_process_control
  | Impact

type technique = {
  id : string;
  name : string;
  tactics : tactic list;
  description : string;
  applicable_types : string list;
  mitigations : string list;
  capec : int list;
}

type mitigation = {
  mid : string;
  mname : string;
  mdescription : string;
  cost_hint : Qual.Level.t;
}

let tactics =
  [
    Initial_access; Execution; Persistence; Privilege_escalation; Evasion;
    Discovery; Lateral_movement; Collection; Command_and_control;
    Inhibit_response; Impair_process_control; Impact;
  ]

let tactic_to_string = function
  | Initial_access -> "initial-access"
  | Execution -> "execution"
  | Persistence -> "persistence"
  | Privilege_escalation -> "privilege-escalation"
  | Evasion -> "evasion"
  | Discovery -> "discovery"
  | Lateral_movement -> "lateral-movement"
  | Collection -> "collection"
  | Command_and_control -> "command-and-control"
  | Inhibit_response -> "inhibit-response-function"
  | Impair_process_control -> "impair-process-control"
  | Impact -> "impact"

let mitigations =
  [
    {
      mid = "M0917";
      mname = "User Training";
      mdescription =
        "Train users to be aware of access or manipulation attempts to \
         reduce successful spearphishing and social engineering.";
      cost_hint = Qual.Level.Low;
    };
    {
      mid = "M0949";
      mname = "Antivirus/Antimalware";
      mdescription =
        "Deploy endpoint security to detect and quarantine malicious \
         software (the paper's Endpoint Security mitigation).";
      cost_hint = Qual.Level.Medium;
    };
    {
      mid = "M0930";
      mname = "Network Segmentation";
      mdescription =
        "Architect network sections to isolate critical systems and limit \
         lateral movement between IT and OT.";
      cost_hint = Qual.Level.High;
    };
    {
      mid = "M0932";
      mname = "Multi-factor Authentication";
      mdescription = "Require two or more pieces of evidence at login.";
      cost_hint = Qual.Level.Medium;
    };
    {
      mid = "M0926";
      mname = "Privileged Account Management";
      mdescription =
        "Manage creation, use and permissions of privileged accounts.";
      cost_hint = Qual.Level.Medium;
    };
    {
      mid = "M0942";
      mname = "Disable or Remove Feature or Program";
      mdescription = "Remove or deny access to unnecessary software/features.";
      cost_hint = Qual.Level.Low;
    };
    {
      mid = "M0810";
      mname = "Out-of-Band Communications Channel";
      mdescription =
        "Provide an alternative channel for alarms so operators are \
         notified even when the primary HMI path is degraded.";
      cost_hint = Qual.Level.High;
    };
    {
      mid = "M0937";
      mname = "Filter Network Traffic";
      mdescription = "Use appliances to filter ingress/egress traffic.";
      cost_hint = Qual.Level.Medium;
    };
  ]

let mk id name tactics description applicable_types mitigations capec =
  { id; name; tactics; description; applicable_types; mitigations; capec }

let techniques =
  [
    mk "T0866" "Exploitation of Remote Services"
      [ Initial_access; Lateral_movement ]
      "Adversaries exploit a software vulnerability in a remote service to \
       gain access to ICS assets (the high-level attack of §VII)."
      [ "workstation"; "server"; "scada_server"; "historian"; "plc" ]
      [ "M0930"; "M0926"; "M0937" ] [ 100; 248 ];
    mk "T0865" "Spearphishing Attachment"
      [ Initial_access ]
      "Adversaries use spearphishing with a malicious attachment or link \
       to gain initial access (the spam e-mail of Fig. 4)."
      [ "workstation"; "email_client" ]
      [ "M0917"; "M0949" ] [ 98; 163 ];
    mk "T0862" "Supply Chain Compromise"
      [ Initial_access ]
      "Adversaries manipulate products or delivery mechanisms before \
       receipt by the final consumer."
      [ "plc"; "controller"; "workstation" ]
      [ "M0926" ] [ 438 ];
    mk "T0853" "Scripting"
      [ Execution ]
      "Adversaries use scripting languages to execute arbitrary code."
      [ "workstation"; "server"; "browser" ]
      [ "M0942"; "M0949" ] [ 248 ];
    mk "T0843" "Program Download"
      [ Lateral_movement ]
      "Adversaries perform a program download to transfer a user program \
       to a controller, changing the control logic."
      [ "plc"; "controller" ]
      [ "M0930"; "M0926" ] [ 233 ];
    mk "T0831" "Manipulation of Control"
      [ Impair_process_control ]
      "Adversaries manipulate physical process control: in the case study, \
       reconfiguring the input and output valve actuators."
      [ "controller"; "plc"; "actuator"; "valve" ]
      [ "M0930"; "M0810" ] [ 233 ];
    mk "T0827" "Loss of Control"
      [ Impact ]
      "Adversaries seek to achieve a sustained loss of control of the \
       physical process."
      [ "controller"; "plc" ]
      [ "M0810" ] [];
    mk "T0829" "Loss of View"
      [ Impact ]
      "Adversaries cause a sustained or permanent loss of view: operators \
       cannot monitor the process status (HMI no-signal, F3)."
      [ "hmi" ]
      [ "M0810" ] [];
    mk "T0846" "Remote System Discovery"
      [ Discovery ]
      "Adversaries attempt to get a listing of other systems on the \
       network."
      [ "switch"; "ot_network"; "workstation" ]
      [ "M0930"; "M0937" ] [];
    mk "T0859" "Valid Accounts"
      [ Initial_access; Persistence; Privilege_escalation; Lateral_movement ]
      "Adversaries steal and abuse the credentials of existing accounts."
      [ "workstation"; "server"; "scada_server"; "hmi" ]
      [ "M0932"; "M0926"; "M0917" ] [ 94 ];
    mk "T0814" "Denial of Service"
      [ Inhibit_response ]
      "Adversaries perform denial of service to disrupt expected device \
       functionality."
      [ "switch"; "ot_network"; "plc"; "scada_server" ]
      [ "M0937" ] [ 125 ];
  ]

let find_technique id = List.find_opt (fun t -> t.id = id) techniques

let techniques_for_type ty =
  List.filter (fun t -> List.mem ty t.applicable_types) techniques

let techniques_for_tactic tac =
  List.filter (fun t -> List.mem tac t.tactics) techniques

let find_mitigation mid = List.find_opt (fun m -> m.mid = mid) mitigations

let mitigations_for t =
  List.filter_map find_mitigation t.mitigations

let pp_technique ppf t = Format.fprintf ppf "%s %s" t.id t.name
let pp_mitigation ppf m = Format.fprintf ppf "%s %s" m.mid m.mname
