(** Offline snapshot of the Common Weakness Enumeration entries the
    framework's mutation generator draws on (see DESIGN.md on database
    substitution: schema-faithful curated records, not the live registry). *)

type t = {
  id : int;                 (** e.g. 284 for CWE-284 *)
  name : string;
  description : string;
  parent : int option;      (** ChildOf in the research view *)
  applicable_types : string list;
      (** catalog component-type names this weakness typically affects *)
}

val all : t list
val find : int -> t option
val key : t -> string
(** ["CWE-284"]. *)

val for_component_type : string -> t list
val ancestors : t -> t list
(** Transitive ChildOf chain, nearest first. *)

val pp : Format.formatter -> t -> unit
