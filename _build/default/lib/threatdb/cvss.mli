(** Complete CVSS v3.1 implementation (base, temporal and environmental
    metric groups) following the FIRST specification — the scoring system
    CVE entries are measured with (§III.B).

    Scores are computed with the specification's exact constants and
    Roundup function; vector strings parse and print in the standard
    ["CVSS:3.1/AV:N/AC:L/…"] form. *)

type attack_vector = AV_network | AV_adjacent | AV_local | AV_physical
type attack_complexity = AC_low | AC_high
type privileges_required = PR_none | PR_low | PR_high
type user_interaction = UI_none | UI_required
type scope = S_unchanged | S_changed
type impact = I_high | I_low | I_none

type base = {
  av : attack_vector;
  ac : attack_complexity;
  pr : privileges_required;
  ui : user_interaction;
  s : scope;
  c : impact;
  i : impact;
  a : impact;
}

type exploit_maturity = E_not_defined | E_high | E_functional | E_poc | E_unproven

type remediation_level =
  | RL_not_defined
  | RL_unavailable
  | RL_workaround
  | RL_temporary_fix
  | RL_official_fix

type report_confidence = RC_not_defined | RC_confirmed | RC_reasonable | RC_unknown

type temporal = {
  e : exploit_maturity;
  rl : remediation_level;
  rc : report_confidence;
}

type requirement = R_not_defined | R_high | R_medium | R_low

type environmental = {
  cr : requirement;  (** confidentiality requirement *)
  ir : requirement;
  ar : requirement;
  modified : base option;  (** modified base metrics; [None] = unmodified *)
}

val default_temporal : temporal
val default_environmental : environmental

val base_score : base -> float
(** In [0.0, 10.0], one decimal. *)

val temporal_score : base -> temporal -> float
val environmental_score : base -> temporal -> environmental -> float

type severity = None_ | Low | Medium | High | Critical

val severity : float -> severity
(** Qualitative severity rating scale of the specification. *)

val severity_to_level : severity -> Qual.Level.t
(** Maps onto the paper's five-category scale: None→VL, Low→L, Medium→M,
    High→H, Critical→VH. *)

val severity_to_string : severity -> string

val to_vector : base -> string
(** ["CVSS:3.1/AV:…/AC:…/PR:…/UI:…/S:…/C:…/I:…/A:…"]. *)

val of_vector : string -> (base, string) result
(** Parses a base vector (extra metric groups are ignored). *)

val roundup : float -> float
(** The specification's Roundup: smallest number with one decimal that is
    [>=] the input, with the official integer-arithmetic implementation. *)
