type t = {
  id : int;
  name : string;
  description : string;
  severity : Qual.Level.t;
  likelihood : Qual.Level.t;
  related_cwes : int list;
}

let mk id name description severity likelihood related_cwes =
  { id; name; description; severity; likelihood; related_cwes }

open Qual.Level

let all =
  [
    mk 98 "Phishing"
      "An adversary masquerades as a trustworthy entity to trick a user \
       into revealing information or performing actions."
      Very_high High [ 287; 522 ];
    mk 163 "Spear Phishing"
      "Targeted phishing against specific individuals, such as the \
       operator of an engineering workstation."
      Very_high Medium [ 287; 522 ];
    mk 542 "Targeted Malware"
      "An adversary develops malware tailored to the target environment, \
       e.g. delivered through a malicious download link."
      Very_high Medium [ 829; 494 ];
    mk 17 "Using Malicious Files"
      "An attacker exploits file handling to deliver and execute a \
       malicious payload."
      High Medium [ 829 ];
    mk 233 "Privilege Escalation"
      "An adversary exploits a weakness enabling them to elevate their \
       privilege."
      High Medium [ 284 ];
    mk 100 "Overflow Buffers"
      "Targets improper restriction of operations within the bounds of a \
       memory buffer."
      Very_high High [ 787; 20 ];
    mk 248 "Command Injection"
      "An adversary injects commands through an input mechanism that are \
       executed with the privileges of the product."
      High Medium [ 94; 20 ];
    mk 125 "Flooding"
      "An adversary consumes the resources of a target by rapidly issuing \
       requests."
      Medium High [ 400 ];
    mk 94 "Adversary in the Middle (AiTM)"
      "An adversary inserts themselves into the communication channel \
       between two components."
      Very_high Medium [ 287; 522 ];
    mk 438 "Modification During Manufacture"
      "An attacker modifies a technology component during its development \
       or packaging, ahead of deployment."
      High Very_low [ 1188 ];
  ]

let find id = List.find_opt (fun p -> p.id = id) all
let key p = Printf.sprintf "CAPEC-%d" p.id
let for_cwe cwe = List.filter (fun p -> List.mem cwe p.related_cwes) all
let pp ppf p = Format.fprintf ppf "%s %s" (key p) p.name
