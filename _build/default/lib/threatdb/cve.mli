(** Offline snapshot of CVE-style vulnerability records with CVSS v3.1
    vectors. The identifiers are synthetic ("CVE-SIM-…") to make clear this
    is a curated stand-in for the live registry, but every record carries a
    well-formed vector, CWE links and component-type applicability — the
    fields the framework's mutation generator reads. *)

type t = {
  id : string;
  description : string;
  vector : Cvss.base;
  cwes : int list;
  techniques : string list;  (** ATT&CK technique ids this CVE enables *)
  applicable_types : string list;
}

val all : t list
val find : string -> t option
val for_component_type : string -> t list
val score : t -> float
(** CVSS base score. *)

val severity_level : t -> Qual.Level.t
val pp : Format.formatter -> t -> unit
