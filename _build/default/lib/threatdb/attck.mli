(** Offline snapshot of MITRE ATT&CK for ICS: the tactics, techniques and
    mitigations the paper's workflow consumes (§IV.A and §IV.C), including
    the case study's *Exploitation of Remote Services*, *User Training* and
    the endpoint-protection mitigations. *)

type tactic =
  | Initial_access
  | Execution
  | Persistence
  | Privilege_escalation
  | Evasion
  | Discovery
  | Lateral_movement
  | Collection
  | Command_and_control
  | Inhibit_response
  | Impair_process_control
  | Impact

type technique = {
  id : string;  (** e.g. "T0866" *)
  name : string;
  tactics : tactic list;
  description : string;
  applicable_types : string list;  (** catalog component-type names *)
  mitigations : string list;       (** mitigation ids *)
  capec : int list;                (** related CAPEC pattern ids *)
}

type mitigation = {
  mid : string;  (** e.g. "M0917" *)
  mname : string;
  mdescription : string;
  cost_hint : Qual.Level.t;
      (** rough implementation-cost category for the optimization step *)
}

val tactics : tactic list
val tactic_to_string : tactic -> string

val techniques : technique list
val find_technique : string -> technique option
val techniques_for_type : string -> technique list
val techniques_for_tactic : tactic -> technique list

val mitigations : mitigation list
val find_mitigation : string -> mitigation option
val mitigations_for : technique -> mitigation list

val pp_technique : Format.formatter -> technique -> unit
val pp_mitigation : Format.formatter -> mitigation -> unit
