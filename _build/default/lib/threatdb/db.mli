(** Unified query layer over the threat-knowledge snapshots (CWE, CAPEC,
    CVE/CVSS, ATT&CK-ICS) and the transformation of that knowledge into ASP
    facts — step 2 of Fig. 1: "injecting validated information on the
    component security faults … from validated public collections". *)

type threat = {
  technique : Attck.technique;
  cves : Cve.t list;           (** applicable CVEs backing the technique *)
  severity : Qual.Level.t;     (** max CVE severity, else CAPEC severity *)
}

val threats_for_type : string -> threat list
(** Threat landscape of one catalog component type. *)

val capec_for_technique : Attck.technique -> Capec.t list

(** Component-type-independent severity of a technique: the maximum
    severity over all CVEs enabling it, falling back to the related CAPEC
    patterns' severity, then to Medium. *)
val technique_severity : Attck.technique -> Qual.Level.t
val cwes_for_cve : Cve.t -> Cwe.t list

val referential_integrity : unit -> string list
(** Broken cross-references between the snapshots (empty = consistent);
    exercised by the test suite to keep the seed data well-formed. *)

val asp_facts : components:(string * string) list -> Asp.Program.t
(** [asp_facts ~components] with [(element_id, component_type)] pairs emits:
    - [technique(TId).], [tactic(TId, Tactic).]
    - [vulnerable(Component, TId).] when the technique applies to the type
    - [vuln_severity(Component, TId, S).] with [S] in 1..5
    - [mitigation(MId).], [mitigates(MId, TId).]
    - [mitigation_cost(MId, C).] with [C] in 1..5 (from the cost hint)

    Ids are sanitized to ASP constants (lowercased). *)
