type attack_vector = AV_network | AV_adjacent | AV_local | AV_physical
type attack_complexity = AC_low | AC_high
type privileges_required = PR_none | PR_low | PR_high
type user_interaction = UI_none | UI_required
type scope = S_unchanged | S_changed
type impact = I_high | I_low | I_none

type base = {
  av : attack_vector;
  ac : attack_complexity;
  pr : privileges_required;
  ui : user_interaction;
  s : scope;
  c : impact;
  i : impact;
  a : impact;
}

type exploit_maturity = E_not_defined | E_high | E_functional | E_poc | E_unproven

type remediation_level =
  | RL_not_defined
  | RL_unavailable
  | RL_workaround
  | RL_temporary_fix
  | RL_official_fix

type report_confidence = RC_not_defined | RC_confirmed | RC_reasonable | RC_unknown

type temporal = {
  e : exploit_maturity;
  rl : remediation_level;
  rc : report_confidence;
}

type requirement = R_not_defined | R_high | R_medium | R_low

type environmental = {
  cr : requirement;
  ir : requirement;
  ar : requirement;
  modified : base option;
}

let default_temporal = { e = E_not_defined; rl = RL_not_defined; rc = RC_not_defined }

let default_environmental =
  { cr = R_not_defined; ir = R_not_defined; ar = R_not_defined; modified = None }

(* ------------------------------------------------------------------ *)
(* Metric weights (CVSS v3.1 specification, table 7.4)                  *)
(* ------------------------------------------------------------------ *)

let w_av = function
  | AV_network -> 0.85
  | AV_adjacent -> 0.62
  | AV_local -> 0.55
  | AV_physical -> 0.2

let w_ac = function AC_low -> 0.77 | AC_high -> 0.44

let w_pr scope = function
  | PR_none -> 0.85
  | PR_low -> ( match scope with S_unchanged -> 0.62 | S_changed -> 0.68)
  | PR_high -> ( match scope with S_unchanged -> 0.27 | S_changed -> 0.5)

let w_ui = function UI_none -> 0.85 | UI_required -> 0.62
let w_cia = function I_high -> 0.56 | I_low -> 0.22 | I_none -> 0.

let w_e = function
  | E_not_defined | E_high -> 1.
  | E_functional -> 0.97
  | E_poc -> 0.94
  | E_unproven -> 0.91

let w_rl = function
  | RL_not_defined | RL_unavailable -> 1.
  | RL_workaround -> 0.97
  | RL_temporary_fix -> 0.96
  | RL_official_fix -> 0.95

let w_rc = function
  | RC_not_defined | RC_confirmed -> 1.
  | RC_reasonable -> 0.96
  | RC_unknown -> 0.92

let w_req = function
  | R_not_defined | R_medium -> 1.
  | R_high -> 1.5
  | R_low -> 0.5

(* ------------------------------------------------------------------ *)
(* Scores                                                               *)
(* ------------------------------------------------------------------ *)

(* Appendix A of the specification: integer-based Roundup avoiding
   floating-point artifacts. *)
let roundup value =
  let int_input = Float.round (value *. 100_000.) |> int_of_float in
  if int_input mod 10_000 = 0 then float_of_int int_input /. 100_000.
  else float_of_int (1 + (int_input / 10_000)) /. 10.

let iss b = 1. -. ((1. -. w_cia b.c) *. (1. -. w_cia b.i) *. (1. -. w_cia b.a))

let impact_sub b =
  let iss = iss b in
  match b.s with
  | S_unchanged -> 6.42 *. iss
  | S_changed -> (7.52 *. (iss -. 0.029)) -. (3.25 *. ((iss -. 0.02) ** 15.))

let exploitability_sub b = 8.22 *. w_av b.av *. w_ac b.ac *. w_pr b.s b.pr *. w_ui b.ui

let base_score b =
  let impact = impact_sub b in
  if impact <= 0. then 0.
  else
    let expl = exploitability_sub b in
    match b.s with
    | S_unchanged -> roundup (Float.min (impact +. expl) 10.)
    | S_changed -> roundup (Float.min (1.08 *. (impact +. expl)) 10.)

let temporal_score b t =
  roundup (base_score b *. w_e t.e *. w_rl t.rl *. w_rc t.rc)

let environmental_score b t env =
  let m = Option.value ~default:b env.modified in
  let miss =
    Float.min
      (1.
      -. ((1. -. (w_req env.cr *. w_cia m.c))
         *. (1. -. (w_req env.ir *. w_cia m.i))
         *. (1. -. (w_req env.ar *. w_cia m.a))))
      0.915
  in
  let modified_impact =
    match m.s with
    | S_unchanged -> 6.42 *. miss
    | S_changed ->
        (7.52 *. (miss -. 0.029)) -. (3.25 *. (((miss *. 0.9731) -. 0.02) ** 13.))
  in
  let modified_expl = exploitability_sub m in
  if modified_impact <= 0. then 0.
  else
    let combined =
      match m.s with
      | S_unchanged -> Float.min (modified_impact +. modified_expl) 10.
      | S_changed -> Float.min (1.08 *. (modified_impact +. modified_expl)) 10.
    in
    roundup (roundup combined *. w_e t.e *. w_rl t.rl *. w_rc t.rc)

(* ------------------------------------------------------------------ *)
(* Severity                                                             *)
(* ------------------------------------------------------------------ *)

type severity = None_ | Low | Medium | High | Critical

let severity score =
  if score <= 0. then None_
  else if score < 4.0 then Low
  else if score < 7.0 then Medium
  else if score < 9.0 then High
  else Critical

let severity_to_level = function
  | None_ -> Qual.Level.Very_low
  | Low -> Qual.Level.Low
  | Medium -> Qual.Level.Medium
  | High -> Qual.Level.High
  | Critical -> Qual.Level.Very_high

let severity_to_string = function
  | None_ -> "None"
  | Low -> "Low"
  | Medium -> "Medium"
  | High -> "High"
  | Critical -> "Critical"

(* ------------------------------------------------------------------ *)
(* Vector strings                                                       *)
(* ------------------------------------------------------------------ *)

let to_vector b =
  let av = function AV_network -> "N" | AV_adjacent -> "A" | AV_local -> "L" | AV_physical -> "P" in
  let ac = function AC_low -> "L" | AC_high -> "H" in
  let pr = function PR_none -> "N" | PR_low -> "L" | PR_high -> "H" in
  let ui = function UI_none -> "N" | UI_required -> "R" in
  let s = function S_unchanged -> "U" | S_changed -> "C" in
  let cia = function I_high -> "H" | I_low -> "L" | I_none -> "N" in
  Printf.sprintf "CVSS:3.1/AV:%s/AC:%s/PR:%s/UI:%s/S:%s/C:%s/I:%s/A:%s"
    (av b.av) (ac b.ac) (pr b.pr) (ui b.ui) (s b.s) (cia b.c) (cia b.i)
    (cia b.a)

let of_vector str =
  let parts = String.split_on_char '/' (String.trim str) in
  match parts with
  | prefix :: metrics when prefix = "CVSS:3.1" || prefix = "CVSS:3.0" -> (
      let table = Hashtbl.create 8 in
      let malformed = ref None in
      List.iter
        (fun metric ->
          match String.split_on_char ':' metric with
          | [ k; v ] -> Hashtbl.replace table k v
          | _ -> malformed := Some metric)
        metrics;
      match !malformed with
      | Some metric -> Error (Printf.sprintf "malformed metric %S" metric)
      | None -> (
          let get k =
            match Hashtbl.find_opt table k with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "missing metric %s" k)
          in
          let ( let* ) = Result.bind in
          let* av =
            let* v = get "AV" in
            match v with
            | "N" -> Ok AV_network
            | "A" -> Ok AV_adjacent
            | "L" -> Ok AV_local
            | "P" -> Ok AV_physical
            | v -> Error ("bad AV:" ^ v)
          in
          let* ac =
            let* v = get "AC" in
            match v with
            | "L" -> Ok AC_low
            | "H" -> Ok AC_high
            | v -> Error ("bad AC:" ^ v)
          in
          let* pr =
            let* v = get "PR" in
            match v with
            | "N" -> Ok PR_none
            | "L" -> Ok PR_low
            | "H" -> Ok PR_high
            | v -> Error ("bad PR:" ^ v)
          in
          let* ui =
            let* v = get "UI" in
            match v with
            | "N" -> Ok UI_none
            | "R" -> Ok UI_required
            | v -> Error ("bad UI:" ^ v)
          in
          let* s =
            let* v = get "S" in
            match v with
            | "U" -> Ok S_unchanged
            | "C" -> Ok S_changed
            | v -> Error ("bad S:" ^ v)
          in
          let cia k =
            let* v = get k in
            match v with
            | "H" -> Ok I_high
            | "L" -> Ok I_low
            | "N" -> Ok I_none
            | v -> Error (Printf.sprintf "bad %s:%s" k v)
          in
          let* c = cia "C" in
          let* i = cia "I" in
          let* a = cia "A" in
          Ok { av; ac; pr; ui; s; c; i; a }))
  | _ -> Error "vector must start with CVSS:3.1"
