(** Rendering of the paper's result artifacts ("the results of the
    evaluation can be examined in a form of a Jupyter Notebook", §VII —
    here: plain-text tables). *)

val table_i : unit -> string
(** Table I: the O-RA risk matrix. *)

val table_ii :
  fault_ids:string list ->
  mitigation_ids:string list ->
  (string * Epa.Analysis.row) list ->
  string
(** Table II layout: one line per labeled scenario with [*] for activated
    fault modes, [Active] per active mitigation, and [Violated]/[-] per
    requirement. *)

val iec_matrix : unit -> string

val fair_tree : Risk.Ora.node -> string
(** Fig. 2 artifact: the risk-attribute derivation tree. *)

val hierarchical_matrix : unit -> string
(** Fig. 3 artifact. *)

val model_inventory : Archimate.Model.t -> string
(** Fig. 4 artifact: elements (grouped by layer) and relationships. *)

val propagation_paths : Epa.Propagation.result -> string

val markdown_table : header:string list -> string list list -> string
(** Generic GitHub-style table used by the benches. *)
