let table_i () =
  Risk.Matrix.render ~row_label:"LM" ~col_label:"Loss Event Frequency (LEF)"
    Risk.Ora.risk_matrix

let table_ii ~fault_ids ~mitigation_ids rows =
  let buf = Buffer.create 512 in
  let cell w s = Printf.sprintf "%-*s" w s in
  let fault_w = 4 and mit_w = 8 and req_w = 10 in
  (* header *)
  Buffer.add_string buf (cell 5 "");
  Buffer.add_string buf "| ";
  List.iter (fun f -> Buffer.add_string buf (cell fault_w f)) fault_ids;
  Buffer.add_string buf "| ";
  List.iter (fun m -> Buffer.add_string buf (cell mit_w m)) mitigation_ids;
  Buffer.add_string buf "| ";
  (match rows with
  | (_, row) :: _ ->
      List.iter
        (fun (rid, _) -> Buffer.add_string buf (cell req_w rid))
        row.Epa.Analysis.verdicts
  | [] -> ());
  Buffer.add_char buf '\n';
  let width = Buffer.length buf - 1 in
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, (row : Epa.Analysis.row)) ->
      Buffer.add_string buf (cell 5 label);
      Buffer.add_string buf "| ";
      List.iter
        (fun f ->
          let active = List.mem f row.Epa.Analysis.scenario.Epa.Scenario.faults in
          Buffer.add_string buf (cell fault_w (if active then "*" else "")))
        fault_ids;
      Buffer.add_string buf "| ";
      List.iter
        (fun m ->
          let active =
            List.mem m row.Epa.Analysis.scenario.Epa.Scenario.mitigations
          in
          Buffer.add_string buf (cell mit_w (if active then "Active" else "")))
        mitigation_ids;
      Buffer.add_string buf "| ";
      List.iter
        (fun (_, verdict) ->
          Buffer.add_string buf
            (cell req_w
               (if Epa.Requirement.violated verdict then "Violated" else "-")))
        row.Epa.Analysis.verdicts;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let iec_matrix () = Risk.Iec61508.render_matrix ()
let fair_tree node = Risk.Ora.render_tree node
let hierarchical_matrix () = Cegar.Levels.render_matrix ()

let model_inventory m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "model %S: %d elements, %d relationships\n"
       (Archimate.Model.name m)
       (Archimate.Model.element_count m)
       (Archimate.Model.relationship_count m));
  List.iter
    (fun layer ->
      let elements = Archimate.Model.elements_in_layer layer m in
      if elements <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  [%s]\n" (Archimate.Element.layer_to_string layer));
        List.iter
          (fun (e : Archimate.Element.t) ->
            Buffer.add_string buf
              (Printf.sprintf "    %-12s %-28s %s\n" e.Archimate.Element.id
                 e.Archimate.Element.name
                 (Archimate.Element.kind_to_string e.Archimate.Element.kind)))
          elements
      end)
    [
      Archimate.Element.Business; Archimate.Element.Application;
      Archimate.Element.Technology; Archimate.Element.Physical;
      Archimate.Element.Motivation;
    ];
  Buffer.add_string buf "  [relationships]\n";
  List.iter
    (fun (r : Archimate.Relationship.t) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s -[%s]-> %s\n" r.Archimate.Relationship.source
           (Archimate.Relationship.kind_to_string r.Archimate.Relationship.kind)
           r.Archimate.Relationship.target))
    (Archimate.Model.relationships m);
  Buffer.contents buf

let propagation_paths result =
  let buf = Buffer.create 256 in
  List.iter
    (fun (f : Epa.Propagation.finding) ->
      Buffer.add_string buf (Format.asprintf "  %a\n" Epa.Propagation.pp_finding f))
    (Epa.Propagation.findings result);
  Buffer.contents buf

let markdown_table ~header rows =
  let buf = Buffer.create 256 in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length h) rows)
      header
  in
  let emit_row cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Buffer.add_string buf (Printf.sprintf " %-*s |" w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf "|";
  List.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-' ^ "|")) widths;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      (* pad short rows *)
      let row =
        row @ List.init (max 0 (List.length header - List.length row)) (fun _ -> "")
      in
      emit_row row)
    rows;
  Buffer.contents buf
