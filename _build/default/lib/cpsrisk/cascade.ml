let tank_var i = Printf.sprintf "tank%d" i
let fault_id i = Printf.sprintf "D%d" i

let faults n =
  List.init n (fun i ->
      Epa.Fault.make ~id:(fault_id i)
        ~component:(Printf.sprintf "drain%d" i)
        ~mode:(Epa.Fault.Stuck_at "closed")
        ())

let build n ~faults:active =
  let broken i = List.mem (fault_id i) active in
  let init =
    Qual.Qstate.of_list (List.init n (fun i -> (tank_var i, "low")))
  in
  let step s =
    let next = Array.make n "low" in
    for i = 0 to n - 1 do
      let upstream_overflow = i > 0 && next.(i - 1) = "overflow" in
      let current = Qual.Qstate.get (tank_var i) s in
      next.(i) <-
        (if current = "overflow" || upstream_overflow then "overflow"
         else if broken i then
           match current with "low" -> "high" | _ -> "overflow"
         else "low")
    done;
    Qual.Qstate.of_list (List.init n (fun i -> (tank_var i, next.(i))))
  in
  Epa.Dynamics.to_ts (Epa.Dynamics.make ~init ~step)

let requirements n =
  List.init n (fun i ->
      Epa.Requirement.make
        ~id:(Printf.sprintf "R%d" i)
        ~description:(Printf.sprintf "tank %d must not overflow" i)
        ~formula:(Printf.sprintf "G !%s=overflow" (tank_var i)))

let system n =
  {
    Epa.Analysis.catalog = faults n;
    blocks = (fun _ -> []);
    build = build n;
    requirements = requirements n;
  }

(* ASP chain program: reachability over a linear graph of [n] nodes. *)
let asp_chain_program n =
  let buf = Buffer.create 256 in
  for i = 0 to n - 2 do
    Buffer.add_string buf (Printf.sprintf "edge(n%d, n%d).\n" i (i + 1))
  done;
  Buffer.add_string buf "path(X, Y) :- edge(X, Y).\n";
  Buffer.add_string buf "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  Asp.Parser.parse_program (Buffer.contents buf)

(* ASP choice program: k independent switches with a parity-ish constraint,
   exercising the 2^k stable-model enumeration. *)
let asp_choice_program k =
  let buf = Buffer.create 256 in
  let atoms = List.init k (fun i -> Printf.sprintf "x%d" i) in
  Buffer.add_string buf
    (Printf.sprintf "{ %s }.\n" (String.concat " ; " atoms));
  Buffer.add_string buf ":- not x0.\n";
  Asp.Parser.parse_program (Buffer.contents buf)
