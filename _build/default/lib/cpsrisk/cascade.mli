(** Parametric scaling substrate: a cascade of [n] tanks where tank [i]
    overflows when its own drain fault [Di] sticks or the upstream tank has
    already spilled. One no-overflow requirement per tank; the scenario
    space is 2^n — the knob the scalability benchmarks turn, and a family
    of regression models for the analysis engine. *)

val faults : int -> Epa.Fault.t list
val requirements : int -> Epa.Requirement.t list
val build : int -> faults:string list -> Ltl.Ts.t
val system : int -> Epa.Analysis.system

val asp_chain_program : int -> Asp.Program.t
(** Reachability over a linear [n]-node graph: the grounder-growth
    benchmark (O(n²) ground rules). *)

val asp_choice_program : int -> Asp.Program.t
(** [k] independent choice atoms under one constraint: 2^(k−1) stable
    models — the enumeration benchmark. *)
