lib/cpsrisk/cascade.mli: Asp Epa Ltl
