lib/cpsrisk/water_tank.mli: Archimate Asp Epa Ltl Mitigation
