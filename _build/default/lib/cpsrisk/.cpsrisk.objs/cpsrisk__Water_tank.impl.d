lib/cpsrisk/water_tank.ml: Archimate Array Asp Buffer Cegar Element Epa List Mitigation Model Printf Qual Relationship String Telingo
