lib/cpsrisk/report.mli: Archimate Epa Risk
