lib/cpsrisk/cascade.ml: Array Asp Buffer Epa List Printf Qual String
