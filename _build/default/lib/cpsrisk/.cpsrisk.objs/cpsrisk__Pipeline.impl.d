lib/cpsrisk/pipeline.ml: Archimate Cegar Epa List Mitigation Printf Qual Risk String Threatdb Water_tank
