lib/cpsrisk/pipeline.mli: Archimate Epa Mitigation Qual
