lib/cpsrisk/report.ml: Archimate Buffer Cegar Epa Format List Printf Risk String
