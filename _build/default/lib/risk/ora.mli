(** Open FAIR Risk Analysis (O-RA) qualitative assessment (§IV.B).

    The risk matrix is the paper's Table I, cell for cell. The upstream
    attribute derivations follow the O-RA attribute taxonomy of Fig. 2:

    {v
    Risk ← Loss Event Frequency × Loss Magnitude
    LEF  ← Threat Event Frequency × Vulnerability
    TEF  ← Contact Frequency × Probability of Action
    Vuln ← Threat Capability vs Resistance Strength
    LM   ← Primary Loss ⊕ Secondary Loss
    v}

    Any attribute can be estimated directly (overriding its derivation),
    exactly as analysts do in practice; the result carries the full
    derivation tree for explainability. *)

val risk_matrix : Matrix.t
(** Table I of the paper: rows = Loss Magnitude (VH first), columns = Loss
    Event Frequency (VL first). *)

val risk : lm:Qual.Level.t -> lef:Qual.Level.t -> Qual.Level.t

type attributes = {
  contact_frequency : Qual.Level.t option;
  probability_of_action : Qual.Level.t option;
  threat_event_frequency : Qual.Level.t option;
  threat_capability : Qual.Level.t option;
  resistance_strength : Qual.Level.t option;
  vulnerability : Qual.Level.t option;
  loss_event_frequency : Qual.Level.t option;
  primary_loss : Qual.Level.t option;
  secondary_loss : Qual.Level.t option;
  loss_magnitude : Qual.Level.t option;
}

val no_attributes : attributes
(** Everything unknown; set the fields you can estimate. *)

type node = {
  attribute : string;       (** e.g. "loss_event_frequency" *)
  value : Qual.Level.t;
  children : node list;     (** empty for directly estimated attributes *)
}

type assessment = { level : Qual.Level.t; tree : node }

val assess : attributes -> (assessment, string) result
(** [Error] names the first attribute that can neither be derived nor was
    given. *)

(* Individual derivation steps (exposed for sensitivity analysis): *)
val derive_tef : contact:Qual.Level.t -> action:Qual.Level.t -> Qual.Level.t
val derive_vulnerability :
  capability:Qual.Level.t -> resistance:Qual.Level.t -> Qual.Level.t
val derive_lef : tef:Qual.Level.t -> vulnerability:Qual.Level.t -> Qual.Level.t
val derive_lm : primary:Qual.Level.t -> secondary:Qual.Level.t -> Qual.Level.t

val render_tree : node -> string
(** Indented rendering of the derivation tree (the Fig. 2 artifact). *)
