open Qual.Level

(* Table I of the paper, rows Loss Magnitude VH..VL, columns LEF VL..VH. *)
let risk_matrix =
  Matrix.of_rows
    [
      [ Medium; High; Very_high; Very_high; Very_high ];
      [ Low; Medium; High; Very_high; Very_high ];
      [ Very_low; Low; Medium; High; Very_high ];
      [ Very_low; Very_low; Low; Medium; High ];
      [ Very_low; Very_low; Very_low; Low; Medium ];
    ]

let risk ~lm ~lef = Matrix.lookup risk_matrix ~row:lm ~col:lef

(* TEF: a threat event needs both contact and action — the combination is
   capped by the weaker factor, softened by one category when the other
   factor is extreme. We use the conservative min. *)
let derive_tef ~contact ~action = min contact action

(* Vulnerability: medium baseline shifted by the capability/resistance
   difference (FAIR: vulnerability is the probability that a threat's
   capability exceeds the asset's resistance). *)
let derive_vulnerability ~capability ~resistance =
  shift (to_index capability - to_index resistance) Medium

(* LEF: the threat event frequency thinned by vulnerability — only the
   vulnerable fraction of threat events become loss events. *)
let derive_lef ~tef ~vulnerability =
  of_index_clamped (to_index tef - (4 - to_index vulnerability))

(* LM: losses aggregate; the larger component dominates. *)
let derive_lm ~primary ~secondary = max primary secondary

type attributes = {
  contact_frequency : Qual.Level.t option;
  probability_of_action : Qual.Level.t option;
  threat_event_frequency : Qual.Level.t option;
  threat_capability : Qual.Level.t option;
  resistance_strength : Qual.Level.t option;
  vulnerability : Qual.Level.t option;
  loss_event_frequency : Qual.Level.t option;
  primary_loss : Qual.Level.t option;
  secondary_loss : Qual.Level.t option;
  loss_magnitude : Qual.Level.t option;
}

let no_attributes =
  {
    contact_frequency = None;
    probability_of_action = None;
    threat_event_frequency = None;
    threat_capability = None;
    resistance_strength = None;
    vulnerability = None;
    loss_event_frequency = None;
    primary_loss = None;
    secondary_loss = None;
    loss_magnitude = None;
  }

type node = {
  attribute : string;
  value : Qual.Level.t;
  children : node list;
}

type assessment = { level : Qual.Level.t; tree : node }

let given attribute value = { attribute; value; children = [] }

let assess attrs =
  let ( let* ) = Result.bind in
  (* an attribute is either given directly or derived from children; the
     derivation is only attempted when no direct estimate exists *)
  let resolve direct derive = match direct with Some v -> Ok v | None -> derive () in
  let leaf name = function
    | Some v -> Ok (given name v)
    | None -> Error name
  in
  let tef () =
    resolve
      (Option.map (given "threat_event_frequency") attrs.threat_event_frequency)
      (fun () ->
        let* cf = leaf "contact_frequency" attrs.contact_frequency in
        let* pa = leaf "probability_of_action" attrs.probability_of_action in
        Ok
          {
            attribute = "threat_event_frequency";
            value = derive_tef ~contact:cf.value ~action:pa.value;
            children = [ cf; pa ];
          })
  in
  let vuln () =
    resolve (Option.map (given "vulnerability") attrs.vulnerability) (fun () ->
        let* tc = leaf "threat_capability" attrs.threat_capability in
        let* rs = leaf "resistance_strength" attrs.resistance_strength in
        Ok
          {
            attribute = "vulnerability";
            value = derive_vulnerability ~capability:tc.value ~resistance:rs.value;
            children = [ tc; rs ];
          })
  in
  let* lef =
    resolve
      (Option.map (given "loss_event_frequency") attrs.loss_event_frequency)
      (fun () ->
        let* tef = tef () in
        let* vuln = vuln () in
        Ok
          {
            attribute = "loss_event_frequency";
            value = derive_lef ~tef:tef.value ~vulnerability:vuln.value;
            children = [ tef; vuln ];
          })
  in
  let* lm =
    resolve (Option.map (given "loss_magnitude") attrs.loss_magnitude) (fun () ->
        let* pl = leaf "primary_loss" attrs.primary_loss in
        let* sl = leaf "secondary_loss" attrs.secondary_loss in
        Ok
          {
            attribute = "loss_magnitude";
            value = derive_lm ~primary:pl.value ~secondary:sl.value;
            children = [ pl; sl ];
          })
  in
  let level = risk ~lm:lm.value ~lef:lef.value in
  Ok { level; tree = { attribute = "risk"; value = level; children = [ lef; lm ] } }

let render_tree root =
  let buf = Buffer.create 256 in
  let rec go indent node =
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s%s\n" indent node.attribute
         (Qual.Level.to_string node.value)
         (if node.children = [] then " (given)" else ""));
    List.iter (go (indent ^ "  ")) node.children
  in
  go "" root;
  Buffer.contents buf
