(** 5×5 qualitative combination matrices over the uniform VL…VH scale
    (§IV.B: "the evaluation is based on a 5x5 risk matrix"). *)

type t

val of_rows : Qual.Level.t list list -> t
(** [of_rows rows] with [rows] listed from VH row down to VL row (as printed
    in the paper's Table I) and columns from VL to VH. Raises
    [Invalid_argument] unless exactly 5×5. *)

val lookup : t -> row:Qual.Level.t -> col:Qual.Level.t -> Qual.Level.t

val monotone : t -> bool
(** Non-decreasing along both axes — the sanity property a risk matrix must
    satisfy. *)

val render : ?row_label:string -> ?col_label:string -> t -> string
(** ASCII rendering in the paper's Table I layout (VH row first). *)

val to_rows : t -> Qual.Level.t list list
(** In the same order {!of_rows} accepts. *)
