type interval = { lo : float; hi : float }

let interval lo hi =
  if lo < 0. || hi < lo then
    invalid_arg (Printf.sprintf "Loss.interval: bad bounds [%g, %g]" lo hi);
  { lo; hi }

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let scale k a =
  if k < 0. then invalid_arg "Loss.scale: negative factor";
  { lo = k *. a.lo; hi = k *. a.hi }

let midpoint a = (a.lo +. a.hi) /. 2.
let width a = a.hi -. a.lo
let contains a x = a.lo <= x && x <= a.hi

let default_bands = function
  | Qual.Level.Very_low -> { lo = 0.; hi = 1_000. }
  | Qual.Level.Low -> { lo = 1_000.; hi = 10_000. }
  | Qual.Level.Medium -> { lo = 10_000.; hi = 100_000. }
  | Qual.Level.High -> { lo = 100_000.; hi = 1_000_000. }
  | Qual.Level.Very_high -> { lo = 1_000_000.; hi = 10_000_000. }

let expected_loss ?(bands = default_bands) ~probability ~magnitude () =
  if probability < 0. || probability > 1. then
    invalid_arg
      (Printf.sprintf "Loss.expected_loss: probability %g outside [0,1]"
         probability);
  scale probability (bands magnitude)

let total = List.fold_left add { lo = 0.; hi = 0. }

let annual_loss_exposure ?bands scenarios =
  total
    (List.map
       (fun (probability, magnitude) ->
         expected_loss ?bands ~probability ~magnitude ())
       scenarios)

let pp ppf a = Format.fprintf ppf "[%g, %g]" a.lo a.hi
