(** Rough-granular quantitative loss estimation (Fig. 1 step 6:
    "enriching the model and the components describing attack impacts and
    cost facilitate a rough-granular risk analysis").

    Qualitative loss-magnitude categories map to monetary {e intervals}
    rather than point values — the calibration an SME analyst can actually
    provide — and interval arithmetic propagates the imprecision to the
    totals. *)

type interval = { lo : float; hi : float }

val interval : float -> float -> interval
(** Raises [Invalid_argument] unless [0 <= lo <= hi]. *)

val add : interval -> interval -> interval
val scale : float -> interval -> interval
(** Raises [Invalid_argument] on a negative factor. *)

val midpoint : interval -> float
val width : interval -> float
val contains : interval -> float -> bool

val default_bands : Qual.Level.t -> interval
(** A generic SME calibration in abstract money units:
    VL → \[0, 1k\], L → \[1k, 10k\], M → \[10k, 100k\], H → \[100k, 1M\],
    VH → \[1M, 10M\]. *)

val expected_loss :
  ?bands:(Qual.Level.t -> interval) ->
  probability:float ->
  magnitude:Qual.Level.t ->
  unit ->
  interval
(** Probability-weighted loss interval of one scenario. Raises
    [Invalid_argument] on probabilities outside [0, 1]. *)

val total : interval list -> interval
(** Sum; the empty list totals to [0, 0]. *)

val annual_loss_exposure :
  ?bands:(Qual.Level.t -> interval) ->
  (float * Qual.Level.t) list ->
  interval
(** FAIR-style loss exposure: sum of probability-weighted magnitude bands
    over the scenario list. *)

val pp : Format.formatter -> interval -> unit
