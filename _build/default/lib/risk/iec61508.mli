(** IEC 61508 qualitative hazard analysis (§IV.B): "six categories of the
    likelihood of occurrence and 4 of consequence … combined in a risk class
    matrix" (IEC 61508-5, Annex B). *)

type likelihood =
  | Frequent
  | Probable
  | Occasional
  | Remote
  | Improbable
  | Incredible

type consequence = Catastrophic | Critical | Marginal | Negligible

type risk_class = Class_I | Class_II | Class_III | Class_IV
(** I = intolerable … IV = negligible. *)

val classify : likelihood -> consequence -> risk_class

val all_likelihoods : likelihood list
(** Most to least likely. *)

val all_consequences : consequence list
(** Most to least severe. *)

val likelihood_to_string : likelihood -> string
val consequence_to_string : consequence -> string
val risk_class_to_string : risk_class -> string

val interpretation : risk_class -> string
(** The standard's required action per class. *)

val tolerable : risk_class -> bool
(** Classes III and IV. *)

val render_matrix : unit -> string
