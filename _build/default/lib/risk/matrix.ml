type t = Qual.Level.t array array
(* indexed [row][col] with ascending indices: row 0 = VL, col 0 = VL *)

let of_rows rows =
  if List.length rows <> 5 || List.exists (fun r -> List.length r <> 5) rows then
    invalid_arg "Matrix.of_rows: expected 5 rows of 5 entries";
  (* input is printed top-down from VH to VL: reverse to ascending *)
  Array.of_list (List.rev_map Array.of_list rows)

let lookup m ~row ~col =
  m.(Qual.Level.to_index row).(Qual.Level.to_index col)

let monotone m =
  let ok = ref true in
  for r = 0 to 4 do
    for c = 0 to 4 do
      if r > 0 && Qual.Level.compare m.(r).(c) m.(r - 1).(c) < 0 then ok := false;
      if c > 0 && Qual.Level.compare m.(r).(c) m.(r).(c - 1) < 0 then ok := false
    done
  done;
  !ok

let to_rows m =
  List.init 5 (fun i -> Array.to_list m.(4 - i))

let render ?(row_label = "rows") ?(col_label = "cols") m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-6s|  VL   L   M   H  VH\n" row_label);
  Buffer.add_string buf "------+--------------------\n";
  List.iteri
    (fun i row ->
      let lvl = Qual.Level.of_index_clamped (4 - i) in
      Buffer.add_string buf (Printf.sprintf "%-6s|" (Qual.Level.to_string lvl));
      List.iter
        (fun v ->
          Buffer.add_string buf (Printf.sprintf "%4s" (Qual.Level.to_string v)))
        row;
      Buffer.add_char buf '\n')
    (to_rows m);
  Buffer.add_string buf (Printf.sprintf "      (columns: %s)\n" col_label);
  Buffer.contents buf
