lib/risk/matrix.ml: Array Buffer List Printf Qual
