lib/risk/loss.mli: Format Qual
