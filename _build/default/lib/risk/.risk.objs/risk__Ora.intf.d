lib/risk/ora.mli: Matrix Qual
