lib/risk/loss.ml: Format List Printf Qual
