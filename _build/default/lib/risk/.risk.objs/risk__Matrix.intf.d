lib/risk/matrix.mli: Qual
