lib/risk/iec61508.mli:
