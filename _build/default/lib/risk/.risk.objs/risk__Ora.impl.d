lib/risk/ora.ml: Buffer List Matrix Option Printf Qual Result
