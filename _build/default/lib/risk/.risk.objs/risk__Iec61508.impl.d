lib/risk/iec61508.ml: Buffer List Printf String
