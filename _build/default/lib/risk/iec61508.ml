type likelihood =
  | Frequent
  | Probable
  | Occasional
  | Remote
  | Improbable
  | Incredible

type consequence = Catastrophic | Critical | Marginal | Negligible

type risk_class = Class_I | Class_II | Class_III | Class_IV

(* IEC 61508-5 Annex B risk-class matrix (table B.1). *)
let classify l c =
  match l, c with
  | Frequent, (Catastrophic | Critical | Marginal) -> Class_I
  | Frequent, Negligible -> Class_II
  | Probable, (Catastrophic | Critical) -> Class_I
  | Probable, Marginal -> Class_II
  | Probable, Negligible -> Class_III
  | Occasional, Catastrophic -> Class_I
  | Occasional, Critical -> Class_II
  | Occasional, (Marginal | Negligible) -> Class_III
  | Remote, Catastrophic -> Class_II
  | Remote, (Critical | Marginal) -> Class_III
  | Remote, Negligible -> Class_IV
  | Improbable, (Catastrophic | Critical) -> Class_III
  | Improbable, (Marginal | Negligible) -> Class_IV
  | Incredible, (Catastrophic | Critical | Marginal | Negligible) -> Class_IV

let all_likelihoods =
  [ Frequent; Probable; Occasional; Remote; Improbable; Incredible ]

let all_consequences = [ Catastrophic; Critical; Marginal; Negligible ]

let likelihood_to_string = function
  | Frequent -> "frequent"
  | Probable -> "probable"
  | Occasional -> "occasional"
  | Remote -> "remote"
  | Improbable -> "improbable"
  | Incredible -> "incredible"

let consequence_to_string = function
  | Catastrophic -> "catastrophic"
  | Critical -> "critical"
  | Marginal -> "marginal"
  | Negligible -> "negligible"

let risk_class_to_string = function
  | Class_I -> "I"
  | Class_II -> "II"
  | Class_III -> "III"
  | Class_IV -> "IV"

let interpretation = function
  | Class_I -> "intolerable risk: shall be excluded"
  | Class_II -> "undesirable risk: tolerable only if reduction impracticable"
  | Class_III -> "tolerable risk if the cost of reduction exceeds the gain"
  | Class_IV -> "negligible risk"

let tolerable = function
  | Class_I | Class_II -> false
  | Class_III | Class_IV -> true

let render_matrix () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-11s| %-13s %-9s %-9s %-10s\n" "likelihood" "catastrophic"
       "critical" "marginal" "negligible");
  Buffer.add_string buf (String.make 56 '-' ^ "\n");
  List.iter
    (fun l ->
      Buffer.add_string buf (Printf.sprintf "%-11s|" (likelihood_to_string l));
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf " %-13s" (risk_class_to_string (classify l c))))
        all_consequences;
      Buffer.add_char buf '\n')
    all_likelihoods;
  Buffer.contents buf
