(** Ordered categorical domains — the paper's "categorical ordered variables"
    (§II.B), e.g. workload described as low / medium / high / overloaded.

    A domain is a named, ordered, finite set of labels. Values are
    domain-tagged indices, so comparing values from different domains is a
    programming error and raises [Invalid_argument]. *)

type t
(** An ordered categorical domain. *)

type value
(** A value belonging to a specific domain. *)

val make : name:string -> string list -> t
(** [make ~name labels] builds a domain whose order is the list order.
    Raises [Invalid_argument] on an empty or duplicated label list. *)

val name : t -> string
val labels : t -> string list
val size : t -> int
val equal : t -> t -> bool

val value : t -> string -> value
(** Raises [Invalid_argument] if the label is not in the domain. *)

val value_opt : t -> string -> value option
val of_index : t -> int -> value option
val index : value -> int
val label : value -> string
val domain : value -> t

val equal_value : value -> value -> bool
val compare_value : value -> value -> int
(** Raises [Invalid_argument] when the values belong to different domains. *)

val min_value : t -> value
val max_value : t -> value
val all_values : t -> value list

val succ : value -> value option
(** Next-higher value, [None] at the top. *)

val pred : value -> value option

val shift_clamped : int -> value -> value
(** Move by [k] positions, saturating at the domain bounds. *)

val between : lo:value -> hi:value -> value -> bool
(** Inclusive range membership (same domain required). *)

val pp : Format.formatter -> t -> unit
val pp_value : Format.formatter -> value -> unit
