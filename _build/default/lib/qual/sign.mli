(** Qualitative sign algebra: the classic {-, 0, +} abstraction of reals.

    Signs are the coarsest qualitative abstraction used by qualitative
    process theory (Forbus, 1984). Addition is ambiguous when operands have
    opposite signs, so [add] returns the set of possible results. *)

type t = Neg | Zero | Pos

val equal : t -> t -> bool
val compare : t -> t -> int

val of_int : int -> t
(** Sign of an integer. *)

val of_float : float -> t
(** Sign of a float; [Zero] for [0.] exactly. *)

val to_int : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t

val add : t -> t -> t list
(** Possible signs of a sum; ambiguous cases ([Pos + Neg]) return all three. *)

val add_exn : t -> t -> t
(** Like {!add} but raises [Invalid_argument] on ambiguity. *)

val mul : t -> t -> t
(** Sign of a product (always determined). *)

val all : t list

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
