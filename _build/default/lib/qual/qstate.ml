module Sm = Map.Make (String)

type t = string Sm.t

let empty = Sm.empty
let of_list l = List.fold_left (fun m (k, v) -> Sm.add k v m) Sm.empty l
let to_list s = Sm.bindings s
let set k v s = Sm.add k v s
let get k s = Sm.find k s
let get_opt k s = Sm.find_opt k s
let mem k s = Sm.mem k s
let vars s = List.map fst (Sm.bindings s)
let cardinal = Sm.cardinal
let holds k v s = match Sm.find_opt k s with Some v' -> v = v' | None -> false
let equal = Sm.equal String.equal
let compare = Sm.compare String.compare
let merge a b = Sm.union (fun _ _ r -> Some r) a b
let restrict ks s = Sm.filter (fun k _ -> List.mem k ks) s

let to_string s =
  to_list s
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ", "
  |> Printf.sprintf "{%s}"

let hash s = Hashtbl.hash (to_list s)
let pp ppf s = Format.pp_print_string ppf (to_string s)
