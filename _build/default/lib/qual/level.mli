(** The uniform five-category qualitative scale used throughout the paper's
    risk quantization step: very low … very high (§IV.B).

    Both the Open FAIR O-RA standard and the paper's qualitative risk matrix
    classify every risk attribute on this scale, so it is a first-class type
    rather than a generic {!Domain.t}. *)

type t = Very_low | Low | Medium | High | Very_high

val all : t list
(** In ascending order. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: [Very_low < Low < Medium < High < Very_high]. *)

val to_index : t -> int
(** 0-based ascending index. *)

val of_index : int -> t option

val of_index_clamped : int -> t
(** Out-of-range indices saturate at the extremes. *)

val succ : t -> t
(** Saturating increment. *)

val pred : t -> t
(** Saturating decrement. *)

val max : t -> t -> t
val min : t -> t -> t

val shift : int -> t -> t
(** [shift k l] moves [l] by [k] categories, saturating. *)

val to_string : t -> string
(** Short form: ["VL"], ["L"], ["M"], ["H"], ["VH"]. *)

val to_long_string : t -> string
(** ["very low"], …, ["very high"]. *)

val of_string : string -> t option
(** Accepts short and long forms, case-insensitive. *)

val pp : Format.formatter -> t -> unit
