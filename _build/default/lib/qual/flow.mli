(** Qualitative conservation-law balances (§II.B: physical components share
    quantities underlying undirected conservation laws).

    A balance sums the signs of in-flows (positive contributions) and
    out-flows (negative contributions) into the qualitative derivative of a
    stored quantity. Ambiguous sums — equal-magnitude opposing flows are not
    distinguishable qualitatively — return every consistent derivative. *)

type contribution = In of Sign.t | Out of Sign.t

val derivative : contribution list -> Sign.t list
(** All derivative signs consistent with the contributions. The empty
    contribution list yields [[Zero]]. *)

val derivative_dominant : contribution list -> Sign.t
(** Deterministic resolution used by the discrete-time simulator: counts
    active in-flows minus active out-flows ([Pos] contributions count 1,
    [Zero] count 0, [Neg] count -1) and takes the sign of the balance. This
    models same-magnitude unit flows, which is the abstraction the paper's
    water-tank case study uses. *)

val pp_contribution : Format.formatter -> contribution -> unit
