lib/qual/flow.ml: Format List Sign
