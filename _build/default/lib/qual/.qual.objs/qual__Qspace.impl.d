lib/qual/qspace.ml: Array Format Hashtbl List Printf Sign Stdlib String
