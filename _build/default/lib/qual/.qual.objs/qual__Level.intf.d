lib/qual/level.mli: Format
