lib/qual/sign.mli: Format
