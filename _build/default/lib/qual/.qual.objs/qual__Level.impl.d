lib/qual/level.ml: Format Stdlib String
