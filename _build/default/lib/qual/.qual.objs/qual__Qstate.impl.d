lib/qual/qstate.ml: Format Hashtbl List Map Printf String
