lib/qual/domain.ml: Array Format Hashtbl List Option Printf Stdlib String
