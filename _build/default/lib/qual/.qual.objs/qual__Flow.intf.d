lib/qual/flow.mli: Format Sign
