lib/qual/qstate.mli: Format
