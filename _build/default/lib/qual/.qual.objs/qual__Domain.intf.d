lib/qual/domain.mli: Format
