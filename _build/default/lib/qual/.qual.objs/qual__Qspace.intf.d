lib/qual/qspace.mli: Format Sign
