lib/qual/sign.ml: Format Stdlib
