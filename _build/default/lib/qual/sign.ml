type t = Neg | Zero | Pos

let equal a b =
  match a, b with
  | Neg, Neg | Zero, Zero | Pos, Pos -> true
  | (Neg | Zero | Pos), _ -> false

let to_int = function Neg -> -1 | Zero -> 0 | Pos -> 1
let compare a b = Stdlib.compare (to_int a) (to_int b)
let of_int n = if n < 0 then Neg else if n > 0 then Pos else Zero
let of_float x = if x < 0. then Neg else if x > 0. then Pos else Zero
let neg = function Neg -> Pos | Zero -> Zero | Pos -> Neg

let add a b =
  match a, b with
  | Zero, x | x, Zero -> [ x ]
  | Pos, Pos -> [ Pos ]
  | Neg, Neg -> [ Neg ]
  | Pos, Neg | Neg, Pos -> [ Neg; Zero; Pos ]

let add_exn a b =
  match add a b with
  | [ s ] -> s
  | _ -> invalid_arg "Sign.add_exn: ambiguous sum of opposite signs"

let mul a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | Pos, Pos | Neg, Neg -> Pos
  | Pos, Neg | Neg, Pos -> Neg

let all = [ Neg; Zero; Pos ]
let to_string = function Neg -> "-" | Zero -> "0" | Pos -> "+"

let of_string = function
  | "-" | "neg" -> Some Neg
  | "0" | "zero" -> Some Zero
  | "+" | "pos" -> Some Pos
  | _ -> None

let pp ppf s = Format.pp_print_string ppf (to_string s)
