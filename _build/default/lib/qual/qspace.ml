type t = {
  name : string;
  landmarks : string array;
  positions : float array option; (* same length as landmarks when numeric *)
}

type qval = Below | At of int | Between of int | Above

let check_names landmarks =
  if landmarks = [] then invalid_arg "Qspace.make: empty landmark list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then
        invalid_arg (Printf.sprintf "Qspace.make: duplicate landmark %S" l);
      Hashtbl.add seen l ())
    landmarks

let make ~name ~landmarks =
  check_names landmarks;
  { name; landmarks = Array.of_list landmarks; positions = None }

let make_numeric ~name ~landmarks =
  check_names (List.map fst landmarks);
  let positions = List.map snd landmarks in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  if not (ascending positions) then
    invalid_arg "Qspace.make_numeric: landmark positions must be strictly increasing";
  {
    name;
    landmarks = Array.of_list (List.map fst landmarks);
    positions = Some (Array.of_list positions);
  }

let name s = s.name
let landmark_count s = Array.length s.landmarks

let landmark_name s i =
  if i < 0 || i >= landmark_count s then
    invalid_arg (Printf.sprintf "Qspace.landmark_name: index %d out of range" i);
  s.landmarks.(i)

let landmark_index s l =
  let n = landmark_count s in
  let rec loop i = if i >= n then None else if s.landmarks.(i) = l then Some i else loop (i + 1) in
  loop 0

let at s l =
  match landmark_index s l with
  | Some i -> At i
  | None -> invalid_arg (Printf.sprintf "Qspace.at: unknown landmark %S in %s" l s.name)

let abstract s x =
  match s.positions with
  | None -> invalid_arg "Qspace.abstract: quantity space has no numeric landmarks"
  | Some pos ->
      let n = Array.length pos in
      if x < pos.(0) then Below
      else if x > pos.(n - 1) then Above
      else
        let rec loop i =
          if x = pos.(i) then At i
          else if i + 1 < n && x < pos.(i + 1) then Between i
          else loop (i + 1)
        in
        loop 0

(* Encode qvals on an even/odd integer line for total ordering:
   Below = -1, At i = 2i, Between i = 2i+1, Above = 2n. *)
let rank s = function
  | Below -> -1
  | At i -> 2 * i
  | Between i -> (2 * i) + 1
  | Above -> 2 * landmark_count s

let compare_qval s a b = Stdlib.compare (rank s a) (rank s b)

let equal_qval a b =
  match a, b with
  | Below, Below | Above, Above -> true
  | At i, At j | Between i, Between j -> i = j
  | (Below | At _ | Between _ | Above), _ -> false

let move s v (dir : Sign.t) =
  let n = landmark_count s in
  match dir with
  | Sign.Zero -> v
  | Sign.Pos -> (
      match v with
      | Below -> At 0
      | At i -> if i = n - 1 then Above else Between i
      | Between i -> At (i + 1)
      | Above -> Above)
  | Sign.Neg -> (
      match v with
      | Above -> At (n - 1)
      | At i -> if i = 0 then Below else Between (i - 1)
      | Between i -> At i
      | Below -> Below)

let to_string s = function
  | Below -> Printf.sprintf "(-inf, %s)" s.landmarks.(0)
  | At i -> s.landmarks.(i)
  | Between i -> Printf.sprintf "(%s, %s)" s.landmarks.(i) s.landmarks.(i + 1)
  | Above -> Printf.sprintf "(%s, +inf)" s.landmarks.(landmark_count s - 1)

let pp_qval s ppf v = Format.pp_print_string ppf (to_string s v)

let pp ppf s =
  Format.fprintf ppf "%s[%s]" s.name
    (String.concat " < " (Array.to_list s.landmarks))
