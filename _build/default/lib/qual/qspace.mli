(** Quantity spaces: qualitative abstraction of a continuous quantity along
    landmark values (§II.B: "partitions continuous domains into clusters of
    identical or similar behavior along landmarks").

    A quantity space is an ordered list of landmarks; a qualitative value is
    either exactly at a landmark or inside the open interval between two
    adjacent landmarks (or beyond the extremes). *)

type t
(** A quantity space. *)

type qval =
  | Below          (** strictly below the first landmark *)
  | At of int      (** exactly at landmark [i] *)
  | Between of int (** in the open interval between landmarks [i] and [i+1] *)
  | Above          (** strictly above the last landmark *)

val make : name:string -> landmarks:string list -> t
(** Raises [Invalid_argument] on empty or duplicated landmark names. *)

val make_numeric : name:string -> landmarks:(string * float) list -> t
(** A quantity space whose landmarks carry numeric positions (ascending);
    enables {!abstract}. Raises [Invalid_argument] if positions are not
    strictly increasing. *)

val name : t -> string
val landmark_count : t -> int
val landmark_name : t -> int -> string
val landmark_index : t -> string -> int option

val at : t -> string -> qval
(** Qualitative value at a named landmark; raises [Invalid_argument] if
    unknown. *)

val abstract : t -> float -> qval
(** Map a numeric magnitude into the quantity space (requires
    {!make_numeric}; raises [Invalid_argument] otherwise). *)

val compare_qval : t -> qval -> qval -> int
(** Total order along the quantity space. *)

val equal_qval : qval -> qval -> bool

val move : t -> qval -> Sign.t -> qval
(** One qualitative step in the direction of the derivative sign:
    a value at a landmark moves into the adjacent interval, a value in an
    interval reaches the adjacent landmark. [Zero] keeps the value. Values
    saturate at [Below]/[Above]. *)

val to_string : t -> qval -> string
val pp_qval : t -> Format.formatter -> qval -> unit
val pp : Format.formatter -> t -> unit
