type t = { name : string; labels : string array }
type value = { dom : t; idx : int }

let make ~name labels =
  if labels = [] then invalid_arg "Domain.make: empty label list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then
        invalid_arg (Printf.sprintf "Domain.make: duplicate label %S" l);
      Hashtbl.add seen l ())
    labels;
  { name; labels = Array.of_list labels }

let name d = d.name
let labels d = Array.to_list d.labels
let size d = Array.length d.labels
let equal a b = a.name = b.name && a.labels = b.labels

let find_index d l =
  let n = Array.length d.labels in
  let rec loop i = if i >= n then None else if d.labels.(i) = l then Some i else loop (i + 1) in
  loop 0

let value_opt d l = Option.map (fun idx -> { dom = d; idx }) (find_index d l)

let value d l =
  match value_opt d l with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Domain.value: %S not in domain %s" l d.name)

let of_index d i = if i >= 0 && i < size d then Some { dom = d; idx = i } else None
let index v = v.idx
let label v = v.dom.labels.(v.idx)
let domain v = v.dom

let check_same a b =
  if not (equal a.dom b.dom) then
    invalid_arg
      (Printf.sprintf "Domain: comparing values of distinct domains %s and %s"
         a.dom.name b.dom.name)

let equal_value a b = equal a.dom b.dom && a.idx = b.idx

let compare_value a b =
  check_same a b;
  Stdlib.compare a.idx b.idx

let min_value d = { dom = d; idx = 0 }
let max_value d = { dom = d; idx = size d - 1 }
let all_values d = List.init (size d) (fun idx -> { dom = d; idx })
let succ v = of_index v.dom (v.idx + 1)
let pred v = of_index v.dom (v.idx - 1)

let shift_clamped k v =
  let idx = Stdlib.max 0 (Stdlib.min (size v.dom - 1) (v.idx + k)) in
  { v with idx }

let between ~lo ~hi v =
  check_same lo v;
  check_same hi v;
  lo.idx <= v.idx && v.idx <= hi.idx

let pp ppf d =
  Format.fprintf ppf "%s{%s}" d.name (String.concat " < " (labels d))

let pp_value ppf v = Format.fprintf ppf "%s:%s" v.dom.name (label v)
