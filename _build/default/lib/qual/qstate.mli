(** Qualitative system states: finite assignments of categorical values to
    named variables. Used as the state type of the qualitative dynamics
    simulator and of the transition systems the LTL checker explores. *)

type t
(** An immutable assignment from variable names to label strings. *)

val empty : t
val of_list : (string * string) list -> t
(** Later bindings override earlier ones. *)

val to_list : t -> (string * string) list
(** Sorted by variable name. *)

val set : string -> string -> t -> t
val get : string -> t -> string
(** Raises [Not_found]. *)

val get_opt : string -> t -> string option
val mem : string -> t -> bool
val vars : t -> string list
val cardinal : t -> int

val holds : string -> string -> t -> bool
(** [holds var label s] is [true] iff [var] is bound to [label] in [s]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val merge : t -> t -> t
(** Right-biased union. *)

val restrict : string list -> t -> t
(** Keep only the listed variables (abstraction onto a sub-vocabulary). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
