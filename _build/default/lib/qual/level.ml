type t = Very_low | Low | Medium | High | Very_high

let all = [ Very_low; Low; Medium; High; Very_high ]

let to_index = function
  | Very_low -> 0
  | Low -> 1
  | Medium -> 2
  | High -> 3
  | Very_high -> 4

let of_index = function
  | 0 -> Some Very_low
  | 1 -> Some Low
  | 2 -> Some Medium
  | 3 -> Some High
  | 4 -> Some Very_high
  | _ -> None

let of_index_clamped i =
  match of_index (Stdlib.max 0 (Stdlib.min 4 i)) with
  | Some l -> l
  | None -> assert false

let equal a b = to_index a = to_index b
let compare a b = Stdlib.compare (to_index a) (to_index b)
let succ l = of_index_clamped (to_index l + 1)
let pred l = of_index_clamped (to_index l - 1)
let max a b = if compare a b >= 0 then a else b
let min a b = if compare a b <= 0 then a else b
let shift k l = of_index_clamped (to_index l + k)

let to_string = function
  | Very_low -> "VL"
  | Low -> "L"
  | Medium -> "M"
  | High -> "H"
  | Very_high -> "VH"

let to_long_string = function
  | Very_low -> "very low"
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"
  | Very_high -> "very high"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "vl" | "very low" | "very_low" | "verylow" -> Some Very_low
  | "l" | "low" -> Some Low
  | "m" | "medium" | "med" -> Some Medium
  | "h" | "high" -> Some High
  | "vh" | "very high" | "very_high" | "veryhigh" -> Some Very_high
  | _ -> None

let pp ppf l = Format.pp_print_string ppf (to_string l)
