type contribution = In of Sign.t | Out of Sign.t

let signed = function In s -> s | Out s -> Sign.neg s

let derivative contributions =
  let rec sum acc = function
    | [] -> acc
    | c :: rest ->
        let acc =
          List.concat_map (fun s -> Sign.add s (signed c)) acc
          |> List.sort_uniq Sign.compare
        in
        sum acc rest
  in
  sum [ Sign.Zero ] contributions

let derivative_dominant contributions =
  let balance =
    List.fold_left (fun acc c -> acc + Sign.to_int (signed c)) 0 contributions
  in
  Sign.of_int balance

let pp_contribution ppf = function
  | In s -> Format.fprintf ppf "in(%a)" Sign.pp s
  | Out s -> Format.fprintf ppf "out(%a)" Sign.pp s
