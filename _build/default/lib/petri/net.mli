(** Place/transition Petri nets — the third classical EPA formalism the
    paper positions qualitative EPA against (§III.A). Ordinary nets with
    weighted arcs; analysis by explicit reachability-graph construction,
    which suits the small nets error-propagation models produce. *)

type t

val make :
  places:string list ->
  transitions:string list ->
  arcs:(string * string * int) list ->
  t
(** [arcs] are (source, target, weight) with one endpoint a place and the
    other a transition. Raises [Invalid_argument] on unknown names,
    non-positive weights, duplicate arcs, or a place–place / transition–
    transition arc. *)

type marking = (string * int) list
(** Tokens per place; places absent from the list hold zero. Normalized
    (sorted, zero entries dropped) by all functions returning markings. *)

val normalize : t -> marking -> marking
(** Also validates place names and non-negative counts. *)

val enabled : t -> marking -> string list
(** Transitions fireable in the marking. *)

val fire : t -> marking -> string -> marking
(** Raises [Invalid_argument] when the transition is not enabled. *)

type graph = {
  markings : marking list;             (** in BFS discovery order *)
  edges : (marking * string * marking) list;
  complete : bool;  (** false when the bound cut exploration *)
}

val reachability : ?max_markings:int -> t -> initial:marking -> graph
(** Explicit reachability graph (default bound 10_000 markings). *)

val bounded : ?bound:int -> ?max_markings:int -> t -> initial:marking -> bool
(** Every reachable place count stays ≤ [bound] (default 1, i.e. safe
    net); false when exploration hits [max_markings] without settling. *)

val deadlocks : ?max_markings:int -> t -> initial:marking -> marking list
(** Reachable markings enabling no transition. *)

val reachable_with :
  ?max_markings:int -> t -> initial:marking -> pred:(marking -> bool) -> marking option
(** First discovered marking satisfying [pred] — e.g. the hazard marking
    of an error-propagation net. *)

val tokens : marking -> string -> int
val pp_marking : Format.formatter -> marking -> unit
