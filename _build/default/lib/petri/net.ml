type t = {
  places : string list;
  transitions : string list;
  (* per transition: consumed and produced tokens per place *)
  pre : (string, (string * int) list) Hashtbl.t;
  post : (string, (string * int) list) Hashtbl.t;
}

type marking = (string * int) list

let make ~places ~transitions ~arcs =
  let dup l =
    let seen = Hashtbl.create 8 in
    List.find_opt
      (fun x ->
        if Hashtbl.mem seen x then true
        else begin
          Hashtbl.replace seen x ();
          false
        end)
      l
  in
  (match dup places with
  | Some p -> invalid_arg (Printf.sprintf "Petri.make: duplicate place %s" p)
  | None -> ());
  (match dup transitions with
  | Some t -> invalid_arg (Printf.sprintf "Petri.make: duplicate transition %s" t)
  | None -> ());
  (match List.find_opt (fun p -> List.mem p transitions) places with
  | Some x ->
      invalid_arg (Printf.sprintf "Petri.make: %s is both place and transition" x)
  | None -> ());
  let pre = Hashtbl.create 16 and post = Hashtbl.create 16 in
  List.iter
    (fun t ->
      Hashtbl.replace pre t [];
      Hashtbl.replace post t [])
    transitions;
  let seen_arcs = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, w) ->
      if w <= 0 then
        invalid_arg
          (Printf.sprintf "Petri.make: non-positive weight on %s -> %s" src dst);
      if Hashtbl.mem seen_arcs (src, dst) then
        invalid_arg (Printf.sprintf "Petri.make: duplicate arc %s -> %s" src dst);
      Hashtbl.replace seen_arcs (src, dst) ();
      match
        (List.mem src places, List.mem src transitions,
         List.mem dst places, List.mem dst transitions)
      with
      | true, _, _, true ->
          (* place -> transition: consumption *)
          Hashtbl.replace pre dst ((src, w) :: Hashtbl.find pre dst)
      | _, true, true, _ ->
          (* transition -> place: production *)
          Hashtbl.replace post src ((dst, w) :: Hashtbl.find post src)
      | true, _, true, _ ->
          invalid_arg (Printf.sprintf "Petri.make: place-place arc %s -> %s" src dst)
      | _, true, _, true ->
          invalid_arg
            (Printf.sprintf "Petri.make: transition-transition arc %s -> %s" src dst)
      | _ ->
          invalid_arg
            (Printf.sprintf "Petri.make: unknown endpoint on arc %s -> %s" src dst))
    arcs;
  { places; transitions; pre; post }

let tokens marking place =
  Option.value ~default:0 (List.assoc_opt place marking)

let normalize net marking =
  List.iter
    (fun (p, n) ->
      if not (List.mem p net.places) then
        invalid_arg (Printf.sprintf "Petri: unknown place %s" p);
      if n < 0 then
        invalid_arg (Printf.sprintf "Petri: negative token count on %s" p))
    marking;
  (* sum duplicates, drop zeros, sort *)
  List.filter_map
    (fun p ->
      let total =
        List.fold_left
          (fun acc (p', n) -> if p' = p then acc + n else acc)
          0 marking
      in
      if total > 0 then Some (p, total) else None)
    net.places
  |> List.sort compare

let transition_enabled net marking t =
  List.for_all (fun (p, w) -> tokens marking p >= w) (Hashtbl.find net.pre t)

let enabled net marking =
  let marking = normalize net marking in
  List.filter (transition_enabled net marking) net.transitions

let fire net marking t =
  let marking = normalize net marking in
  if not (List.mem t net.transitions) then
    invalid_arg (Printf.sprintf "Petri.fire: unknown transition %s" t);
  if not (transition_enabled net marking t) then
    invalid_arg (Printf.sprintf "Petri.fire: transition %s not enabled" t);
  let consumed =
    List.map
      (fun p -> (p, tokens marking p - Option.value ~default:0 (List.assoc_opt p (Hashtbl.find net.pre t))))
      net.places
  in
  let produced =
    List.map
      (fun (p, n) ->
        (p, n + Option.value ~default:0 (List.assoc_opt p (Hashtbl.find net.post t))))
      consumed
  in
  normalize net produced

type graph = {
  markings : marking list;
  edges : (marking * string * marking) list;
  complete : bool;
}

let reachability ?(max_markings = 10_000) net ~initial =
  let initial = normalize net initial in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen initial ();
  let order = ref [ initial ] in
  let edges = ref [] in
  let queue = Queue.create () in
  Queue.add initial queue;
  let complete = ref true in
  while not (Queue.is_empty queue) do
    let m = Queue.take queue in
    List.iter
      (fun t ->
        if transition_enabled net m t then begin
          let m' = fire net m t in
          edges := (m, t, m') :: !edges;
          if not (Hashtbl.mem seen m') then
            if Hashtbl.length seen >= max_markings then complete := false
            else begin
              Hashtbl.replace seen m' ();
              order := m' :: !order;
              Queue.add m' queue
            end
        end)
      net.transitions
  done;
  { markings = List.rev !order; edges = List.rev !edges; complete = !complete }

let bounded ?(bound = 1) ?max_markings net ~initial =
  let g = reachability ?max_markings net ~initial in
  g.complete
  && List.for_all
       (fun m -> List.for_all (fun (_, n) -> n <= bound) m)
       g.markings

let deadlocks ?max_markings net ~initial =
  let g = reachability ?max_markings net ~initial in
  List.filter (fun m -> enabled net m = []) g.markings

let reachable_with ?max_markings net ~initial ~pred =
  let g = reachability ?max_markings net ~initial in
  List.find_opt pred g.markings

let pp_marking ppf m =
  Format.fprintf ppf "{%s}"
    (String.concat ", " (List.map (fun (p, n) -> Printf.sprintf "%s:%d" p n) m))
