lib/petri/net.ml: Format Hashtbl List Option Printf Queue String
