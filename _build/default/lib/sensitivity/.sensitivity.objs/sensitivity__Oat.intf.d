lib/sensitivity/oat.mli: Qual
