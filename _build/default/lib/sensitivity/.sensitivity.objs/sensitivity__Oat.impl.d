lib/sensitivity/oat.ml: Buffer List Printf Qual Stdlib String
