type assignment = (string * Qual.Level.t) list

type factor = { name : string; candidates : Qual.Level.t list }

type entry = {
  factor : string;
  outcomes : (Qual.Level.t * Qual.Level.t) list;
  spread : int;
}

type report = entry list

let sensitive e = e.spread > 0

let analyze ~factors ~baseline ~f =
  List.map
    (fun factor ->
      if not (List.mem_assoc factor.name baseline) then
        invalid_arg
          (Printf.sprintf "Oat.analyze: factor %s missing from baseline"
             factor.name);
      if factor.candidates = [] then
        invalid_arg
          (Printf.sprintf "Oat.analyze: factor %s has no candidates" factor.name);
      let outcomes =
        List.map
          (fun v ->
            let assignment =
              (factor.name, v) :: List.remove_assoc factor.name baseline
            in
            (v, f assignment))
          factor.candidates
      in
      let indices =
        List.map (fun (_, out) -> Qual.Level.to_index out) outcomes
      in
      let spread =
        List.fold_left max (List.hd indices) indices
        - List.fold_left min (List.hd indices) indices
      in
      { factor = factor.name; outcomes; spread })
    factors

let tornado report =
  List.stable_sort (fun a b -> Stdlib.compare b.spread a.spread) report

let sensitive_factors report =
  List.filter_map (fun e -> if sensitive e then Some e.factor else None) report

let render report =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      let outs =
        e.outcomes
        |> List.map (fun (v, o) ->
               Printf.sprintf "%s->%s" (Qual.Level.to_string v)
                 (Qual.Level.to_string o))
        |> String.concat " "
      in
      Buffer.add_string buf
        (Printf.sprintf "%-24s spread=%d %s  [%s]\n" e.factor e.spread
           (if sensitive e then "SENSITIVE" else "stable   ")
           outs))
    (tornado report);
  Buffer.contents buf
