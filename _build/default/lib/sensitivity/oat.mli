(** One-at-a-time qualitative sensitivity analysis (§II.A, §V.A):
    "sensitivity analysis examines how uncertain factors impact the output
    by altering its values". Each factor is varied over its candidate
    categories while the others stay at baseline; a factor is sensitive
    when the output changes. The tornado ranking orders factors by output
    spread, highlighting "the critical decisions from the point of view of
    the overall result" for the analyst. *)

type assignment = (string * Qual.Level.t) list

type factor = { name : string; candidates : Qual.Level.t list }

type entry = {
  factor : string;
  outcomes : (Qual.Level.t * Qual.Level.t) list;
      (** (input value, output) per candidate *)
  spread : int;  (** max output index − min output index *)
}

val sensitive : entry -> bool
(** Spread > 0. *)

type report = entry list

val analyze :
  factors:factor list -> baseline:assignment -> f:(assignment -> Qual.Level.t) ->
  report
(** Raises [Invalid_argument] when a factor is missing from the baseline. *)

val tornado : report -> entry list
(** Sorted by spread, largest first (ties keep input order). *)

val sensitive_factors : report -> string list
val render : report -> string
