(** The hierarchical-evaluation matrix of Fig. 3: asset-type refinements on
    one axis, threat refinements on the other, with the three evaluation
    focuses placed at their applicable combinations (§VI). *)

type asset_level =
  | A_system     (** main assets only, broad terms *)
  | A_subsystem  (** refined assets, e.g. the decomposed workstation *)
  | A_component  (** component versions known, library-precise *)

type threat_level =
  | T_aspect      (** high-level aspects: reliability, availability, timeliness *)
  | T_fault       (** specific faults and vulnerabilities *)
  | T_mitigation  (** mitigation mechanisms attached *)

type focus =
  | Topology_propagation  (** §VI item 1 *)
  | Detailed_epa          (** §VI item 2 *)
  | Mitigation_planning   (** §VI item 3 *)

val asset_levels : asset_level list
(** Coarsest first (matrix rows, top to bottom). *)

val threat_levels : threat_level list
(** Coarsest first (the paper arranges these right to left). *)

val focus_for : asset_level -> threat_level -> focus
(** The evaluation focus recommended at a matrix cell: aspect-level threats
    get topology propagation, fault-level threats detailed EPA, and
    mitigation-level threats mitigation planning (available at any asset
    granularity — precision grows with refinement). *)

val refines : coarse:asset_level -> fine:asset_level -> bool
val asset_level_to_string : asset_level -> string
val threat_level_to_string : threat_level -> string
val focus_to_string : focus -> string
val render_matrix : unit -> string
