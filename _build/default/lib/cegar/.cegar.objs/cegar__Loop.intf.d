lib/cegar/loop.mli:
