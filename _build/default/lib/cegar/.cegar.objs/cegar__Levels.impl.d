lib/cegar/levels.ml: Buffer List Printf String
