lib/cegar/refine.mli: Archimate
