lib/cegar/refine.ml: Archimate Hashtbl List Printf
