lib/cegar/loop.ml: List Printf
