lib/cegar/levels.mli:
