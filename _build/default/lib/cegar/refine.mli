(** Asset refinement (Fig. 4): replacing a coarse asset by its internal
    decomposition while keeping the whole as a composition parent — the
    "Engineering Workstation → E-mail Client → Browser → Infected Computer"
    example, with mitigations attachable to the refined parts. *)

type t = {
  target : string;  (** id of the element to refine *)
  parts : Archimate.Element.t list;
  internal_flows : (string * string) list;
      (** flow edges between part ids (attack/data flow inside the asset) *)
}

val apply : Archimate.Model.t -> t -> Archimate.Model.t
(** Adds the parts, composition edges from the target to each part, and the
    internal flows (relationship ids are derived from the part ids).
    Raises [Invalid_argument] when the target is missing or a part id
    collides. *)

val parts_of : Archimate.Model.t -> string -> string list
(** Ids of the direct composition parts (refinement result inspection). *)

val attack_path :
  Archimate.Model.t -> entry:string -> target:string -> string list option
(** Shortest flow path between two elements (BFS) — the refined model's
    attack-flow witness, e.g. e-mail client → browser → infected computer.
    Includes both endpoints. *)

val flatten : Archimate.Model.t -> string -> Archimate.Model.t
(** Inverse abstraction: removes all (transitive) parts of the given
    element, re-coarsening the model. *)
