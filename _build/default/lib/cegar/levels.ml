type asset_level = A_system | A_subsystem | A_component
type threat_level = T_aspect | T_fault | T_mitigation

type focus =
  | Topology_propagation
  | Detailed_epa
  | Mitigation_planning

let asset_levels = [ A_system; A_subsystem; A_component ]
let threat_levels = [ T_aspect; T_fault; T_mitigation ]

let focus_for _asset = function
  | T_aspect -> Topology_propagation
  | T_fault -> Detailed_epa
  | T_mitigation -> Mitigation_planning

let level_index = function A_system -> 0 | A_subsystem -> 1 | A_component -> 2
let refines ~coarse ~fine = level_index coarse < level_index fine

let asset_level_to_string = function
  | A_system -> "system"
  | A_subsystem -> "subsystem"
  | A_component -> "component"

let threat_level_to_string = function
  | T_aspect -> "aspect"
  | T_fault -> "fault/vulnerability"
  | T_mitigation -> "mitigation"

let focus_to_string = function
  | Topology_propagation -> "topology-based propagation"
  | Detailed_epa -> "detailed propagation analysis"
  | Mitigation_planning -> "mitigation plan"

let render_matrix () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-12s|" "asset\\threat");
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf " %-22s" (threat_level_to_string t)))
    threat_levels;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make 83 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "%-12s|" (asset_level_to_string a));
      List.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf " %-22s" (focus_to_string (focus_for a t))))
        threat_levels;
      Buffer.add_char buf '\n')
    asset_levels;
  Buffer.contents buf
