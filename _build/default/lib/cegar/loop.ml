type 'c round = {
  level : int;
  candidates : 'c list;
  eliminated : 'c list;
}

type 'c outcome = {
  rounds : 'c round list;
  confirmed : 'c list;
  converged : bool;
}

let run ?(max_rounds = 10) ~equal ~initial ~refine () =
  let initial_candidates = initial () in
  let rec go level candidates rounds =
    if level >= max_rounds then
      { rounds = List.rev rounds; confirmed = candidates; converged = false }
    else
      match refine level candidates with
      | None ->
          { rounds = List.rev rounds; confirmed = candidates; converged = true }
      | Some refined ->
          let fresh =
            List.filter
              (fun c -> not (List.exists (equal c) candidates))
              refined
          in
          if fresh <> [] then
            invalid_arg
              (Printf.sprintf
                 "Cegar.Loop.run: refinement at level %d introduced %d \
                  candidates absent from the abstraction (unsound abstraction)"
                 (level + 1) (List.length fresh));
          let eliminated =
            List.filter
              (fun c -> not (List.exists (equal c) refined))
              candidates
          in
          let round = { level = level + 1; candidates = refined; eliminated } in
          go (level + 1) refined (round :: rounds)
  in
  let round0 = { level = 0; candidates = initial_candidates; eliminated = [] } in
  go 0 initial_candidates [ round0 ]
