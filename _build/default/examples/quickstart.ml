(* Quickstart: reproduce the paper's case study in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The water-tank system model ships with the library. *)
  print_endline "=== Water tank case study (paper §VII) ===\n";
  print_string (Cpsrisk.Report.model_inventory Cpsrisk.Water_tank.model);

  (* 2. Exhaustive qualitative EPA over every fault combination,
        reproducing Table II. *)
  print_endline "\n=== Table II: analysis results ===\n";
  print_string
    (Cpsrisk.Report.table_ii
       ~fault_ids:[ "F1"; "F2"; "F3"; "F4" ]
       ~mitigation_ids:[ "M1"; "M2" ]
       (Cpsrisk.Water_tank.table_ii_rows ()));

  (* 3. The most severe hazard (the paper's S5-vs-S7 discussion). *)
  let rows = Cpsrisk.Water_tank.full_sweep ~mitigations:[ "M1"; "M2" ] () in
  (match Epa.Analysis.most_severe rows with
  | worst :: _ ->
      Printf.printf
        "\nMost severe combination: {%s} — %d requirement(s) violated by only \
         %d simultaneous faults\n"
        (String.concat ","
           worst.Epa.Analysis.scenario.Epa.Scenario.faults)
        (List.length (Epa.Analysis.violations worst))
        (List.length worst.Epa.Analysis.scenario.Epa.Scenario.faults)
  | [] -> print_endline "no hazards");

  (* 4. One call runs the whole Fig. 1 pipeline. *)
  print_endline "\n=== Fig. 1 pipeline ===\n";
  let artifacts = Cpsrisk.Pipeline.run (Cpsrisk.Pipeline.water_tank_config ()) in
  print_string (Cpsrisk.Pipeline.render_log artifacts)
