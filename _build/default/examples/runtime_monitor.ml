(* Runtime requirement monitoring: the temporal layer used online.

   The same LTLf requirements the EPA checks offline can watch a live
   system through Bacchus–Kabanza formula progression: after each observed
   state the requirement is rewritten into the obligation that must hold
   on the remainder of the run; True/False verdicts fire as soon as the
   prefix decides them. Here we "stream" the water-tank states produced by
   the qualitative simulator under the paper's S4 scenario (output valve
   stuck closed) and watch R1 fail the moment the tank overflows — with
   the very trace prefix as the explanation.

   Run with: dune exec examples/runtime_monitor.exe *)

let describe state =
  Printf.sprintf "level=%-8s in=%-6s out=%-6s alert=%s"
    (Qual.Qstate.get "level" state)
    (Qual.Qstate.get "in_valve" state)
    (Qual.Qstate.get "out_valve" state)
    (Qual.Qstate.get "alert" state)

type monitor = {
  id : string;
  mutable obligation : Ltl.Formula.t;
  mutable verdict : bool option; (* None = still undecided *)
}

let make_monitor (r : Epa.Requirement.t) =
  { id = r.Epa.Requirement.id; obligation = r.Epa.Requirement.formula; verdict = None }

let feed monitor state ~is_last =
  match monitor.verdict with
  | Some _ -> ()
  | None -> (
      let next = Ltl.Trace.progress state ~is_last monitor.obligation in
      match next with
      | Ltl.Formula.True -> monitor.verdict <- Some true
      | Ltl.Formula.False -> monitor.verdict <- Some false
      | obligation -> monitor.obligation <- obligation)

let () =
  print_endline "=== Online monitoring of R1/R2 under scenario S4 (F2) ===\n";
  let monitors = List.map make_monitor Cpsrisk.Water_tank.requirements in
  List.iter
    (fun m ->
      Printf.printf "monitor %s: %s\n" m.id (Ltl.Formula.to_string m.obligation))
    monitors;
  print_newline ();

  (* stream the deterministic run of the faulty system *)
  let ts = Cpsrisk.Water_tank.build_dynamics ~faults:[ "F2" ] in
  let trace = Ltl.Ts.run ts (List.hd (Ltl.Ts.init ts)) in
  let n = Ltl.Trace.length trace in
  for t = 0 to n - 1 do
    let state = Ltl.Trace.state trace t in
    Printf.printf "t=%-2d %s\n" t (describe state);
    List.iter
      (fun m ->
        let before = m.verdict in
        feed m state ~is_last:(t = n - 1);
        match before, m.verdict with
        | None, Some v ->
            Printf.printf "      >>> %s decided: %s at t=%d\n" m.id
              (if v then "SATISFIED" else "VIOLATED")
              t
        | None, None when t < n - 1 ->
            (* show how the obligation evolves for the safety property *)
            if m.id = "R2" && Qual.Qstate.holds "level" "overflow" state then
              Printf.printf "      ... %s obligation now: %s\n" m.id
                (Ltl.Formula.to_string m.obligation)
        | _ -> ())
      monitors
  done;

  print_newline ();
  List.iter
    (fun m ->
      Printf.printf "final %s: %s\n" m.id
        (match m.verdict with
        | Some true -> "satisfied"
        | Some false -> "violated"
        | None -> "undecided (no violation on this run)"))
    monitors;

  (* sanity: the monitors agree with the offline checker *)
  print_newline ();
  List.iter
    (fun (r : Epa.Requirement.t) ->
      let offline = Ltl.Trace.eval trace r.Epa.Requirement.formula in
      Printf.printf "offline check %s: %s\n" r.Epa.Requirement.id
        (if offline then "satisfied" else "violated"))
    Cpsrisk.Water_tank.requirements
