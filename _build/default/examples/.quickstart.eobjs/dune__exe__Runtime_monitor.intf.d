examples/runtime_monitor.mli:
