examples/uncertainty_analysis.mli:
