examples/manufacturing_line.mli:
