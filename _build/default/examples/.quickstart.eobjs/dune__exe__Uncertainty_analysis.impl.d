examples/uncertainty_analysis.ml: List Option Printf Qual Risk Rough Sensitivity String
