examples/quickstart.ml: Cpsrisk Epa List Printf String
