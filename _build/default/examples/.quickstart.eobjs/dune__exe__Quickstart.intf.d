examples/quickstart.mli:
