examples/manufacturing_line.ml: Archimate Cpsrisk Epa List Mitigation Model Printf Qual Relationship String Threatdb
