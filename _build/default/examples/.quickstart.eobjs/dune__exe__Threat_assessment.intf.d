examples/threat_assessment.mli:
