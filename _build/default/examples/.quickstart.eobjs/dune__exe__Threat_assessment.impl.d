examples/threat_assessment.ml: Archimate Attackgraph Cegar Cpsrisk Format List Option Printf Qual String Threatdb
