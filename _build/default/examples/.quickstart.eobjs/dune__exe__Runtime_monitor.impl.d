examples/runtime_monitor.ml: Cpsrisk Epa List Ltl Printf Qual
