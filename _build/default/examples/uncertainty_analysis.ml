(* Uncertainty handling (paper §V): qualitative risk under uncertain
   attributes with Rough Set Theory and one-at-a-time sensitivity
   analysis, ending with attribute reducts that tell the analyst which
   estimates actually matter.

   Run with: dune exec examples/uncertainty_analysis.exe *)

let lvl s = Option.get (Qual.Level.of_string s)

let () =
  print_endline "=== The paper's §V.A example ===\n";
  (* LEF is known Low; LM is only known as a set of possible categories *)
  let narrow = { Rough.Risk_bridge.lm = [ lvl "VL"; lvl "L" ]; lef = [ lvl "L" ] } in
  let wide =
    {
      Rough.Risk_bridge.lm = [ lvl "L"; lvl "M"; lvl "H"; lvl "VH" ];
      lef = [ lvl "L" ];
    }
  in
  let describe name u =
    let outcomes =
      Rough.Risk_bridge.possible_risks u
      |> List.map Qual.Level.to_string |> String.concat ", "
    in
    Printf.printf "%-28s possible risk {%s} -> %s\n" name outcomes
      (if Rough.Risk_bridge.is_sensitive u then
         "SENSITIVE: further evaluation required"
       else "insensitive: conclusion is certain")
  in
  describe "LM in {VL,L}, LEF=L:" narrow;
  describe "LM in {L..VH}, LEF=L:" wide;

  print_endline "\n=== RST three-region view of the wide case ===\n";
  let sys = Rough.Risk_bridge.worlds wide in
  let risky =
    List.filter
      (fun w -> Rough.Infosys.value sys w "risk" <> "VL")
      (Rough.Infosys.objects sys)
  in
  let conditions = Rough.Infosys.restrict_attributes [ "lm" ] sys in
  let regions = Rough.Approx.regions conditions risky in
  Printf.printf "target: worlds with risk above VL\n";
  Printf.printf "  positive  (certainly risky): %s\n"
    (String.concat ", " regions.Rough.Approx.positive);
  Printf.printf "  boundary  (undecidable):     %s\n"
    (String.concat ", " regions.Rough.Approx.boundary);
  Printf.printf "  negative  (certainly safe):  %s\n"
    (String.concat ", " regions.Rough.Approx.negative);

  print_endline "\n=== Sensitivity analysis (tornado) ===\n";
  let f assignment =
    Risk.Ora.risk
      ~lm:(List.assoc "loss_magnitude" assignment)
      ~lef:(List.assoc "loss_event_frequency" assignment)
  in
  let report =
    Sensitivity.Oat.analyze
      ~factors:
        [
          { Sensitivity.Oat.name = "loss_magnitude"; candidates = Qual.Level.all };
          {
            Sensitivity.Oat.name = "loss_event_frequency";
            candidates = [ lvl "VL"; lvl "L"; lvl "M" ];
          };
        ]
      ~baseline:
        [ ("loss_magnitude", lvl "M"); ("loss_event_frequency", lvl "L") ]
      ~f
  in
  print_string (Sensitivity.Oat.render report);

  print_endline "\n=== Which factors does the decision depend on? ===\n";
  (* a small decision table collected from past assessments *)
  let assessments =
    Rough.Infosys.of_table
      ~attributes:[ "exposure"; "skill_needed"; "asset_value"; "decision" ]
      [
        ("a1", [ "internet"; "low"; "high"; "fix_now" ]);
        ("a2", [ "internet"; "high"; "high"; "fix_now" ]);
        ("a3", [ "internal"; "low"; "high"; "plan" ]);
        ("a4", [ "internal"; "high"; "low"; "accept" ]);
        ("a5", [ "internet"; "low"; "low"; "plan" ]);
        ("a6", [ "internal"; "low"; "low"; "accept" ]);
      ]
  in
  let reducts = Rough.Reduct.reducts ~decision:"decision" assessments in
  List.iter
    (fun r -> Printf.printf "reduct: {%s}\n" (String.concat ", " r))
    reducts;
  Printf.printf "core:   {%s}\n"
    (String.concat ", " (Rough.Reduct.core ~decision:"decision" assessments));

  print_endline "\ncertain decision rules:";
  List.iter
    (fun rule ->
      if rule.Rough.Reduct.certain then
        Printf.printf "  %s\n" (Rough.Reduct.rule_to_string rule))
    (Rough.Reduct.induce_rules ~decision:"decision" assessments);

  print_endline "\n=== Full O-RA derivation with explanation (Fig. 2) ===\n";
  let attrs =
    {
      Risk.Ora.no_attributes with
      Risk.Ora.contact_frequency = Some (lvl "H");
      probability_of_action = Some (lvl "M");
      threat_capability = Some (lvl "H");
      resistance_strength = Some (lvl "M");
      primary_loss = Some (lvl "H");
      secondary_loss = Some (lvl "L");
    }
  in
  match Risk.Ora.assess attrs with
  | Ok a -> print_string (Risk.Ora.render_tree a.Risk.Ora.tree)
  | Error missing -> Printf.printf "missing attribute: %s\n" missing
