(* A second IT/OT scenario built entirely through the public API: a small
   manufacturing cell of the kind the paper's SME motivation describes —
   an hydraulic press fed by a conveyor, controlled by a PLC, supervised
   through a SCADA server, with office IT attached.

   Demonstrates: component-type catalog instantiation, custom fault
   catalogs with induced (attacker) faults, qualitative dynamics written
   from scratch, exhaustive EPA, and mitigation optimization.

   Run with: dune exec examples/manufacturing_line.exe *)

let el = Archimate.Catalog.instantiate Archimate.Catalog.standard

let rel id source target kind =
  Archimate.Relationship.make ~id ~source ~target ~kind ()

let model =
  let open Archimate in
  Model.empty ~name:"Press Cell"
  |> Model.add_element (el ~type_name:"plc" ~id:"plc" ~name:"Cell PLC")
  |> Model.add_element (el ~type_name:"sensor" ~id:"guard" ~name:"Light Guard")
  |> Model.add_element
       (el ~type_name:"actuator" ~id:"press" ~name:"Hydraulic Press")
  |> Model.add_element
       (el ~type_name:"actuator" ~id:"conveyor" ~name:"Feed Conveyor")
  |> Model.add_element
       (el ~type_name:"scada_server" ~id:"scada" ~name:"SCADA Server")
  |> Model.add_element (el ~type_name:"hmi" ~id:"panel" ~name:"Operator Panel")
  |> Model.add_element
       (el ~type_name:"workstation" ~id:"office" ~name:"Office Workstation")
  |> Model.add_relationship (rel "r1" "guard" "plc" Relationship.Flow)
  |> Model.add_relationship (rel "r2" "plc" "press" Relationship.Flow)
  |> Model.add_relationship (rel "r3" "plc" "conveyor" Relationship.Flow)
  |> Model.add_relationship (rel "r4" "scada" "plc" Relationship.Flow)
  |> Model.add_relationship (rel "r5" "plc" "panel" Relationship.Flow)
  |> Model.add_relationship (rel "r6" "office" "scada" Relationship.Flow)

(* Faults: the guard sensor can fail silent, the PLC can be reprogrammed
   through the SCADA path, and the office workstation compromise induces
   the PLC compromise. *)
let faults =
  [
    Epa.Fault.make ~id:"G1" ~component:"guard" ~mode:Epa.Fault.Omission
      ~description:"light guard fails silent" ();
    Epa.Fault.make ~id:"P1" ~component:"plc" ~mode:Epa.Fault.Compromise
      ~description:"PLC logic replaced (ignores the guard)" ();
    Epa.Fault.make ~id:"C1" ~component:"conveyor"
      ~mode:(Epa.Fault.Stuck_at "running")
      ~description:"conveyor keeps feeding parts" ();
    Epa.Fault.make ~id:"W1" ~component:"office" ~mode:Epa.Fault.Compromise
      ~description:"phished office workstation reaches the SCADA server"
      ~induces:[ "P1" ] ();
  ]

let mitigations =
  [
    Mitigation.Action.make ~id:"SEG" ~name:"IT/OT Network Segmentation" ~cost:8
      ~blocks:[ "W1" ];
    Mitigation.Action.make ~id:"TRA" ~name:"Phishing Awareness Training"
      ~cost:2 ~blocks:[ "W1" ];
    Mitigation.Action.make ~id:"SIG" ~name:"Signed PLC Programs" ~cost:5
      ~blocks:[ "P1" ];
    Mitigation.Action.make ~id:"GRD" ~name:"Redundant Guard Curtain" ~cost:6
      ~blocks:[ "G1" ];
  ]

(* Qualitative dynamics: a part moves in; the press must only cycle when
   the guard reports the zone clear. A compromised PLC cycles regardless;
   with the guard silent an intrusion is never reported. *)
let build ~faults:active =
  let guard_silent = List.mem "G1" active in
  let plc_rogue = List.mem "P1" active in
  let conveyor_stuck = List.mem "C1" active in
  let init =
    Qual.Qstate.of_list
      [ ("zone", "clear"); ("press", "idle"); ("alarm", "false"); ("t", "0") ]
  in
  let step s =
    let tick = int_of_string (Qual.Qstate.get "t" s) in
    (* an operator reaches into the zone every third tick *)
    let intrusion = tick mod 3 = 2 in
    let zone' = if intrusion then "occupied" else "clear" in
    let sensed_clear = guard_silent || zone' = "clear" in
    let press' =
      if plc_rogue then "cycling"
      else if sensed_clear && (conveyor_stuck || tick mod 2 = 0) then "cycling"
      else "idle"
    in
    let alarm' =
      if zone' = "occupied" && press' = "cycling" && not guard_silent then
        "true"
      else Qual.Qstate.get "alarm" s
    in
    Qual.Qstate.of_list
      [
        ("zone", zone'); ("press", press'); ("alarm", alarm');
        ("t", string_of_int ((tick + 1) mod 6));
      ]
  in
  Epa.Dynamics.to_ts (Epa.Dynamics.make ~init ~step)

let requirements =
  [
    (* safety: the press never cycles while the zone is occupied *)
    Epa.Requirement.make ~id:"SR1"
      ~description:"no press cycle while the zone is occupied"
      ~formula:"G !(zone=occupied & press=cycling)";
    (* observability: a dangerous cycle raises the alarm *)
    Epa.Requirement.make ~id:"SR2"
      ~description:"dangerous cycles are alarmed"
      ~formula:"G ((zone=occupied & press=cycling) -> F alarm)";
  ]

let system =
  {
    Epa.Analysis.catalog = faults;
    blocks = Mitigation.Action.blocks_relation mitigations;
    build;
    requirements;
  }

let () =
  print_endline "=== Press-cell model ===\n";
  print_string (Cpsrisk.Report.model_inventory model);
  assert (Archimate.Validate.is_valid model);

  print_endline "\n=== Threat landscape from the databases ===\n";
  List.iter
    (fun (e : Archimate.Element.t) ->
      match Archimate.Element.property "component_type" e with
      | None -> ()
      | Some ty ->
          let threats = Threatdb.Db.threats_for_type ty in
          if threats <> [] then begin
            Printf.printf "%-10s (%s):\n" e.Archimate.Element.id ty;
            List.iter
              (fun (t : Threatdb.Db.threat) ->
                Printf.printf "  %-6s %-34s severity %s\n"
                  t.Threatdb.Db.technique.Threatdb.Attck.id
                  t.Threatdb.Db.technique.Threatdb.Attck.name
                  (Qual.Level.to_string t.Threatdb.Db.severity))
              threats
          end)
    (Archimate.Model.elements model);

  print_endline "\n=== Exhaustive EPA (16 scenarios) ===\n";
  let rows = Epa.Analysis.run system in
  List.iter
    (fun row ->
      let violations = Epa.Analysis.violations row in
      if violations <> [] then
        Printf.printf "%-24s violates %s\n"
          (Epa.Scenario.label row.Epa.Analysis.scenario)
          (String.concat "," violations))
    rows;

  print_endline "\n=== Mitigation optimization ===\n";
  let residual ~active =
    Epa.Analysis.run ~mitigations:active system
    |> Epa.Analysis.hazardous |> List.length
  in
  let problem = { Mitigation.Optimizer.actions = mitigations; residual } in
  List.iter
    (fun (budget, sol) ->
      Printf.printf "budget %2d -> {%s} cost=%d hazardous-scenarios=%d\n" budget
        (String.concat "," sol.Mitigation.Optimizer.selected)
        sol.Mitigation.Optimizer.cost sol.Mitigation.Optimizer.residual)
    (Mitigation.Optimizer.budget_sweep problem ~budgets:[ 0; 2; 5; 7; 13; 21 ]);

  print_endline "\n=== Multi-phase consolidation (budgets 2, 5, 8) ===\n";
  List.iteri
    (fun i sol ->
      Printf.printf "after phase %d: {%s} residual=%d\n" (i + 1)
        (String.concat "," sol.Mitigation.Optimizer.selected)
        sol.Mitigation.Optimizer.residual)
    (Mitigation.Optimizer.multi_phase problem ~phase_budgets:[ 2; 5; 8 ])
