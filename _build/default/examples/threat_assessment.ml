(* Threat-knowledge walkthrough (paper §IV.A): from the typed system model
   to the attack scenario space — ATT&CK-ICS techniques per asset, backing
   CVEs scored with the CVSS v3.1 calculator, the CWE/CAPEC cross
   references behind the case study's spam-link chain, and the hierarchical
   refinement of the Engineering Workstation.

   Run with: dune exec examples/threat_assessment.exe *)

let () =
  print_endline "=== Asset definition (what could be targeted?) ===\n";
  let assets =
    List.filter_map
      (fun (e : Archimate.Element.t) ->
        Option.map
          (fun ty -> (e.Archimate.Element.id, e.Archimate.Element.name, ty))
          (Archimate.Element.property "component_type" e))
      (Archimate.Model.elements Cpsrisk.Water_tank.model)
  in
  List.iter (fun (id, name, ty) -> Printf.printf "  %-14s %-28s [%s]\n" id name ty) assets;

  print_endline "\n=== Method identification (how could they be attacked?) ===\n";
  List.iter
    (fun (id, _, ty) ->
      let threats = Threatdb.Db.threats_for_type ty in
      if threats <> [] then begin
        Printf.printf "%s:\n" id;
        List.iter
          (fun (t : Threatdb.Db.threat) ->
            let tactics =
              t.Threatdb.Db.technique.Threatdb.Attck.tactics
              |> List.map Threatdb.Attck.tactic_to_string
              |> String.concat ", "
            in
            Printf.printf "  %-6s %-36s [%s] severity=%s\n"
              t.Threatdb.Db.technique.Threatdb.Attck.id
              t.Threatdb.Db.technique.Threatdb.Attck.name tactics
              (Qual.Level.to_string t.Threatdb.Db.severity);
            List.iter
              (fun (c : Threatdb.Cve.t) ->
                Printf.printf "         backed by %s: %.1f (%s)\n"
                  c.Threatdb.Cve.id (Threatdb.Cve.score c)
                  (Threatdb.Cvss.severity_to_string
                     (Threatdb.Cvss.severity (Threatdb.Cve.score c))))
              t.Threatdb.Db.cves)
          threats
      end)
    assets;

  print_endline "\n=== The spam-link chain behind F4 (CWE/CAPEC view) ===\n";
  (match Threatdb.Attck.find_technique "T0865" with
  | Some t ->
      Printf.printf "%s %s\n" t.Threatdb.Attck.id t.Threatdb.Attck.name;
      List.iter
        (fun (p : Threatdb.Capec.t) ->
          Printf.printf "  via %s (%s), likelihood %s\n" (Threatdb.Capec.key p)
            p.Threatdb.Capec.name
            (Qual.Level.to_string p.Threatdb.Capec.likelihood);
          List.iter
            (fun w ->
              match Threatdb.Cwe.find w with
              | Some cwe ->
                  Printf.printf "      exploits %s %s\n" (Threatdb.Cwe.key cwe)
                    cwe.Threatdb.Cwe.name
              | None -> ())
            p.Threatdb.Capec.related_cwes)
        (List.filter_map Threatdb.Capec.find t.Threatdb.Attck.capec)
  | None -> ());

  print_endline "\n=== Environmental re-scoring for this deployment ===\n";
  (* the drive-by CVE, re-scored for an OT environment where integrity and
     availability requirements are high *)
  (match Threatdb.Cve.find "CVE-SIM-2023-0102" with
  | Some c ->
      let base = Threatdb.Cvss.base_score c.Threatdb.Cve.vector in
      let env =
        {
          Threatdb.Cvss.default_environmental with
          Threatdb.Cvss.ir = Threatdb.Cvss.R_high;
          ar = Threatdb.Cvss.R_high;
        }
      in
      let rescored =
        Threatdb.Cvss.environmental_score c.Threatdb.Cve.vector
          Threatdb.Cvss.default_temporal env
      in
      Printf.printf "%s: base %.1f -> environmental %.1f (IR:H, AR:H)\n"
        c.Threatdb.Cve.id base rescored
  | None -> ());

  print_endline "\n=== Hierarchical refinement of the workstation (Fig. 4) ===\n";
  Printf.printf "high level: %d elements\n"
    (Archimate.Model.element_count Cpsrisk.Water_tank.model);
  Printf.printf "refined:    %d elements\n"
    (Archimate.Model.element_count Cpsrisk.Water_tank.refined_model);
  (match
     Cegar.Refine.attack_path Cpsrisk.Water_tank.refined_model ~entry:"email"
       ~target:"infected"
   with
  | Some path ->
      Printf.printf "attack flow: %s\n" (String.concat " -> " path)
  | None -> ());

  print_endline "\n=== Mitigation solution space for the chain ===\n";
  (match Threatdb.Attck.find_technique "T0865" with
  | Some t ->
      List.iter
        (fun (m : Threatdb.Attck.mitigation) ->
          Printf.printf "  %-6s %-28s cost hint: %s\n" m.Threatdb.Attck.mid
            m.Threatdb.Attck.mname
            (Qual.Level.to_string m.Threatdb.Attck.cost_hint))
        (Threatdb.Attck.mitigations_for t)
  | None -> ());

  print_endline "\n=== Hierarchical evaluation matrix (Fig. 3) ===\n";
  print_string (Cpsrisk.Report.hierarchical_matrix ());

  print_endline "\n=== Attack graph over the refined model ===\n";
  let g = Attackgraph.Graph.generate Cpsrisk.Water_tank.refined_model in
  let n_nodes, n_edges = Attackgraph.Graph.size g in
  Printf.printf "%d technique-at-component nodes, %d progression edges\n"
    n_nodes n_edges;
  let scenarios = Attackgraph.Graph.attack_scenarios ~max_length:4 g in
  Printf.printf "%d entry->goal scenarios within 4 steps; the highest-severity ones:\n"
    (List.length scenarios);
  scenarios
  |> List.stable_sort (fun a b ->
         Qual.Level.compare
           (Attackgraph.Graph.severity b)
           (Attackgraph.Graph.severity a))
  |> List.iteri (fun i path ->
         if i < 5 then
           Printf.printf "  [%s] %s\n"
             (Qual.Level.to_string (Attackgraph.Graph.severity path))
             (String.concat " -> "
                (List.map (Format.asprintf "%a" Attackgraph.Graph.pp_node) path)));
  print_endline
    "\n(render the full graph with: dune exec bin/cpsrisk_cli.exe -- attackgraph --dot)"
